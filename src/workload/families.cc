#include "workload/families.h"

#include <algorithm>
#include <utility>

#include "common/env.h"
#include "common/random.h"
#include "common/str_util.h"
#include "storage/column.h"
#include "storage/table.h"
#include "workload/forest.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"
#include "workload/strings.h"

namespace qfcard::workload {

namespace {

// Tail split mirroring bench_common's MakeForestBundle: the labeled set's
// tail becomes the held-out test set (capped at a quarter of what labeling
// kept), the head the training set.
void SplitLabeled(std::vector<LabeledQuery> labeled, const FamilySizes& sizes,
                  int train_target, int test_target, FamilyInstance* out) {
  const int n = static_cast<int>(labeled.size());
  const int n_test = std::min(test_target, n / 4);
  const int n_train = std::min(train_target, n - n_test);
  out->train.assign(labeled.begin(), labeled.begin() + n_train);
  out->test.assign(labeled.end() - n_test, labeled.end());
  (void)sizes;
}

common::StatusOr<FamilyInstance> BuildSingleTable(
    storage::Table table, const PredicateGenOptions& opts,
    const FamilySizes& sizes, uint64_t seed) {
  FamilyInstance inst;
  inst.primary_table = table.name();
  QFCARD_RETURN_IF_ERROR(inst.catalog.AddTable(std::move(table)));
  common::Rng rng(common::MixSeed(seed, 2));
  const std::vector<query::Query> queries = GeneratePredicateWorkload(
      inst.catalog.table(0), 2 * (sizes.train + sizes.test), opts, rng);
  QFCARD_ASSIGN_OR_RETURN(
      std::vector<LabeledQuery> labeled,
      LabelOnTable(inst.catalog.table(0), queries, /*drop_empty=*/true));
  SplitLabeled(std::move(labeled), sizes, sizes.train, sizes.test, &inst);
  return inst;
}

storage::Table MakeZipfTable(int64_t rows, uint64_t seed) {
  common::Rng rng(seed);
  storage::Table table("zipf");
  const int64_t domain = std::max<int64_t>(32, rows / 16);
  // One column per exponent: a skew sweep inside a single family, from
  // near-uniform (0.4) to head-dominated (1.9).
  const double exponents[] = {0.4, 0.8, 1.3, 1.9};
  int zi = 0;
  for (const double s : exponents) {
    storage::Column col(common::StrFormat("Z%d", ++zi),
                        storage::ColumnType::kInt64);
    col.Reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      col.Append(static_cast<double>(rng.Zipf(domain, s)));
    }
    (void)table.AddColumn(std::move(col));
  }
  storage::Column uniform("U", storage::ColumnType::kInt64);
  uniform.Reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    uniform.Append(static_cast<double>(rng.UniformInt(1, domain)));
  }
  (void)table.AddColumn(std::move(uniform));
  return table;
}

common::StatusOr<FamilyInstance> BuildConjunctive(const FamilySizes& sizes,
                                                  uint64_t seed) {
  ForestOptions fo;
  fo.num_rows = sizes.rows;
  fo.seed = common::MixSeed(seed, 1);
  return BuildSingleTable(MakeForestTable(fo), ConjunctiveWorkloadOptions(6),
                          sizes, seed);
}

common::StatusOr<FamilyInstance> BuildMixed(const FamilySizes& sizes,
                                            uint64_t seed) {
  ForestOptions fo;
  fo.num_rows = sizes.rows;
  fo.seed = common::MixSeed(seed, 1);
  return BuildSingleTable(MakeForestTable(fo), MixedWorkloadOptions(6), sizes,
                          seed);
}

common::StatusOr<FamilyInstance> BuildStrings(const FamilySizes& sizes,
                                              uint64_t seed) {
  StringsOptions so;
  so.num_rows = sizes.rows;
  so.seed = common::MixSeed(seed, 1);
  PredicateGenOptions opts = MixedWorkloadOptions(3);
  opts.max_disjuncts = 2;
  opts.like_prob = 0.65;
  opts.max_not_equals = 2;
  return BuildSingleTable(MakeStringsTable(so), opts, sizes, seed);
}

common::StatusOr<FamilyInstance> BuildInHeavy(const FamilySizes& sizes,
                                              uint64_t seed) {
  ForestOptions fo;
  fo.num_rows = sizes.rows;
  fo.seed = common::MixSeed(seed, 1);
  PredicateGenOptions opts = MixedWorkloadOptions(5);
  opts.in_list_prob = 0.85;
  opts.max_in_list = 8;
  return BuildSingleTable(MakeForestTable(fo), opts, sizes, seed);
}

common::StatusOr<FamilyInstance> BuildGroupBy(const FamilySizes& sizes,
                                              uint64_t seed) {
  ForestOptions fo;
  fo.num_rows = sizes.rows;
  fo.seed = common::MixSeed(seed, 1);
  PredicateGenOptions opts = ConjunctiveWorkloadOptions(4);
  opts.max_group_by_attrs = 3;
  return BuildSingleTable(MakeForestTable(fo), opts, sizes, seed);
}

common::StatusOr<FamilyInstance> BuildZipfSkew(const FamilySizes& sizes,
                                               uint64_t seed) {
  return BuildSingleTable(MakeZipfTable(sizes.rows, common::MixSeed(seed, 1)),
                          MixedWorkloadOptions(3), sizes, seed);
}

common::StatusOr<FamilyInstance> BuildCorrelatedJoin(const FamilySizes& sizes,
                                                     uint64_t seed) {
  // Join labeling is the expensive step (exact multi-way counts), so the
  // join family runs a reduced query budget relative to single-table ones.
  const int train_target = std::max(24, sizes.train / 4);
  const int test_target = std::max(16, sizes.test / 2);
  ImdbOptions io;
  io.num_titles = std::max<int64_t>(300, sizes.rows / 3);
  io.seed = common::MixSeed(seed, 1);
  ImdbDatabase db = MakeImdbDatabase(io);
  common::Rng rng(common::MixSeed(seed, 2));
  JobLightOptions jopts;
  jopts.count = 2 * (train_target + test_target);
  const std::vector<query::Query> queries =
      MakeJobLightWorkload(db, jopts, rng);
  QFCARD_ASSIGN_OR_RETURN(
      std::vector<LabeledQuery> labeled,
      LabelOnCatalog(db.catalog, queries, /*drop_empty=*/true));
  FamilyInstance inst;
  inst.catalog = std::move(db.catalog);
  inst.graph = std::move(db.graph);
  inst.primary_table = db.table_names.front();
  SplitLabeled(std::move(labeled), sizes, train_target, test_target, &inst);
  return inst;
}

common::StatusOr<FamilyInstance> BuildDrift(const FamilySizes& sizes,
                                            uint64_t seed) {
  ForestOptions fo;
  fo.num_rows = sizes.rows;
  fo.seed = common::MixSeed(seed, 1);
  FamilyInstance inst;
  storage::Table table = MakeForestTable(fo);
  inst.primary_table = table.name();
  QFCARD_RETURN_IF_ERROR(inst.catalog.AddTable(std::move(table)));
  common::Rng rng(common::MixSeed(seed, 2));
  // Over-generate: the Section 5.5.1 drift split trains on low-dimensional
  // queries and tests on high-dimensional ones, so both halves must be fed
  // from the same stream.
  const std::vector<query::Query> queries = GeneratePredicateWorkload(
      inst.catalog.table(0), 3 * (sizes.train + sizes.test),
      MixedWorkloadOptions(8), rng);
  QFCARD_ASSIGN_OR_RETURN(
      std::vector<LabeledQuery> labeled,
      LabelOnTable(inst.catalog.table(0), queries, /*drop_empty=*/true));
  DriftSplit split = SplitByNumAttributes(std::move(labeled), 3);
  if (split.low.size() > static_cast<size_t>(sizes.train)) {
    split.low.resize(static_cast<size_t>(sizes.train));
  }
  if (split.high.size() > static_cast<size_t>(sizes.test)) {
    split.high.resize(static_cast<size_t>(sizes.test));
  }
  inst.train = std::move(split.low);
  inst.test = std::move(split.high);
  return inst;
}

std::string DidYouMeanFamily(const std::string& name) {
  const std::string suggestion = common::ClosestMatch(name, FamilyNames());
  if (suggestion.empty()) return "";
  return "; did you mean \"" + suggestion + "\"?";
}

}  // namespace

FamilySizes ScaledFamilySizes() {
  FamilySizes sizes;
  sizes.rows = common::ScalePick(1200, 20000, 200000);
  sizes.train = static_cast<int>(common::ScalePick(120, 800, 8000));
  sizes.test = static_cast<int>(common::ScalePick(60, 300, 2000));
  return sizes;
}

const std::vector<WorkloadFamily>& RegisteredFamilies() {
  static const std::vector<WorkloadFamily>* const kFamilies =
      new std::vector<WorkloadFamily>{
          {"conjunctive",
           "forest table, pure conjunctive range+NEQ predicates (Sec. 5)",
           false, false, false, false, false, &BuildConjunctive},
          {"mixed",
           "forest table, mixed OR-of-conjunction predicates (Def. 3.3)",
           false, true, false, false, false, &BuildMixed},
          {"strings",
           "dict-encoded items table, prefix-LIKE + range predicates",
           false, true, false, true, false, &BuildStrings},
          {"in_heavy",
           "forest table, IN-list dominated disjunct mixes",
           false, true, false, false, false, &BuildInHeavy},
          {"group_by",
           "forest table, conjunctive filters + GROUP BY cardinality",
           false, false, true, false, false, &BuildGroupBy},
          {"zipf_skew",
           "Zipf-skew sweep table (exponents 0.4..1.9), mixed predicates",
           false, true, false, false, false, &BuildZipfSkew},
          {"correlated_join",
           "IMDb-like snowflake, JOB-light-style correlated joins",
           true, false, false, false, false, &BuildCorrelatedJoin},
          {"drift",
           "forest table, train on <=3-attribute queries, test on >3",
           false, true, false, false, true, &BuildDrift},
      };
  return *kFamilies;
}

std::vector<std::string> FamilyNames() {
  std::vector<std::string> names;
  names.reserve(RegisteredFamilies().size());
  for (const WorkloadFamily& f : RegisteredFamilies()) names.push_back(f.name);
  return names;
}

common::StatusOr<const WorkloadFamily*> FamilyNamed(const std::string& name) {
  const std::string key = common::ToLower(name);
  for (const WorkloadFamily& f : RegisteredFamilies()) {
    if (f.name == key) return &f;
  }
  return common::Status::NotFound(
      "unknown workload family \"" + name + "\"" + DidYouMeanFamily(name) +
      "; registered families: " + common::Join(FamilyNames(), ", "));
}

}  // namespace qfcard::workload
