#ifndef QFCARD_WORKLOAD_FAMILIES_H_
#define QFCARD_WORKLOAD_FAMILIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"
#include "workload/labeler.h"

namespace qfcard::workload {

/// Scale knobs every family builder receives. Builders treat these as
/// budgets, not exact counts: labeled sets can come back smaller when
/// empty-result queries are dropped or a drift split is uneven.
struct FamilySizes {
  int64_t rows = 5000;  ///< primary-table rows (fact-table rows for joins)
  int train = 400;      ///< target labeled training queries
  int test = 150;       ///< target labeled held-out queries
};

/// The QFCARD_SCALE-driven default sizes (smoke/default/full).
FamilySizes ScaledFamilySizes();

/// A materialized workload family: data plus labeled train/test query sets.
/// The catalog owns the tables; `graph` carries the key/foreign-key edges
/// for join families (empty otherwise) and must be handed to estimators
/// via EstimatorOptions::schema_graph.
struct FamilyInstance {
  storage::Catalog catalog;
  std::string primary_table;
  query::SchemaGraph graph;
  std::vector<LabeledQuery> train;
  std::vector<LabeledQuery> test;
};

/// Descriptor of one workload family (the benchmark matrix's row axis).
/// The capability flags tell the matrix runner which estimator features a
/// family exercises, so unsupported estimator x family cells are skipped
/// deterministically instead of erroring mid-sweep.
struct WorkloadFamily {
  std::string name;         ///< stable key used in reports and CLI flags
  std::string description;  ///< one-line axis description for docs/help
  bool joins = false;         ///< queries join multiple tables
  bool disjunctions = false;  ///< queries carry OR / IN-list predicates
  bool group_by = false;      ///< queries carry GROUP BY attributes
  bool strings = false;       ///< queries hit dictionary-encoded columns
  bool drift = false;         ///< train/test drawn from different regimes
  common::StatusOr<FamilyInstance> (*build)(const FamilySizes& sizes,
                                            uint64_t seed);
};

/// All registered families, in stable report order:
/// conjunctive, mixed, strings, in_heavy, group_by, zipf_skew,
/// correlated_join, drift.
const std::vector<WorkloadFamily>& RegisteredFamilies();

/// Family names in registration order, for help text and sweeps.
std::vector<std::string> FamilyNames();

/// Looks up a family by (case-insensitive) name; unknown names get a
/// did-you-mean NotFound error.
common::StatusOr<const WorkloadFamily*> FamilyNamed(const std::string& name);

}  // namespace qfcard::workload

#endif  // QFCARD_WORKLOAD_FAMILIES_H_
