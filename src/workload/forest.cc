#include "workload/forest.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/str_util.h"

namespace qfcard::workload {

storage::Table MakeForestTable(const ForestOptions& options) {
  common::Rng rng(options.seed);
  storage::Table table("forest");
  const int m = options.num_attributes;
  const int64_t n = options.num_rows;

  // Shared latent factors induce cross-attribute correlation.
  std::vector<double> latent1(static_cast<size_t>(n));
  std::vector<double> latent2(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    latent1[static_cast<size_t>(r)] = rng.Normal();
    latent2[static_cast<size_t>(r)] = rng.Normal();
  }

  for (int a = 0; a < m; ++a) {
    storage::Column col(common::StrFormat("A%d", a + 1),
                        storage::ColumnType::kInt64);
    col.Reserve(static_cast<size_t>(n));
    const int kind = a % 4;
    // Per-attribute weights on the latent factors (deterministic in `a`,
    // bounded away from zero so every pair of same-kind attributes stays
    // visibly correlated).
    const double w1 = 0.6 + 0.25 * std::sin(1.3 * a);
    const double w2 = 0.6 + 0.25 * std::cos(0.7 * a);
    switch (kind) {
      case 0: {
        // Elevation-like: wide unimodal integral domain.
        const double mean = 2800.0 + 50.0 * a;
        const double sd = 350.0;
        for (int64_t r = 0; r < n; ++r) {
          const double v = mean + sd * (w1 * latent1[static_cast<size_t>(r)] +
                                        (1.0 - w1) * rng.Normal());
          col.Append(std::clamp(std::round(v), 1800.0, 3900.0));
        }
        break;
      }
      case 1: {
        // Distance-like: right-skewed, long tail.
        const double scale = 250.0 + 40.0 * a;
        for (int64_t r = 0; r < n; ++r) {
          const double skewed =
              rng.Exponential(1.0 / scale) *
              (1.0 + 0.5 * std::max(latent2[static_cast<size_t>(r)] * w2, -0.9));
          col.Append(std::min(std::round(skewed), 7000.0));
        }
        break;
      }
      case 2: {
        // Aspect-like: bounded, roughly uniform with a latent tilt.
        for (int64_t r = 0; r < n; ++r) {
          double v = rng.Uniform(0.0, 360.0) +
                     40.0 * latent1[static_cast<size_t>(r)] * w2;
          v = std::fmod(std::fmod(v, 360.0) + 360.0, 360.0);
          col.Append(std::floor(v));
        }
        break;
      }
      default: {
        // Categorical: small skewed domain (soil/wilderness indicators).
        const int64_t domain = 2 + (a * 3) % 9;  // 2..10 values
        for (int64_t r = 0; r < n; ++r) {
          int64_t v;
          if (latent2[static_cast<size_t>(r)] > 0.5) {
            v = 0;  // correlated spike
          } else {
            v = rng.Zipf(domain, 1.1) - 1;
          }
          col.Append(static_cast<double>(v));
        }
        break;
      }
    }
    QFCARD_CHECK_OK(table.AddColumn(std::move(col)));
  }
  QFCARD_CHECK_OK(table.Validate());
  return table;
}

}  // namespace qfcard::workload
