#ifndef QFCARD_WORKLOAD_FOREST_H_
#define QFCARD_WORKLOAD_FOREST_H_

#include <cstdint>

#include "storage/table.h"

namespace qfcard::workload {

/// Parameters for the synthetic forest-covertype-like table. The UCI
/// covertype data the paper uses (580k rows x 55 attributes) is substituted
/// by a deterministic generator that reproduces the distributional traits
/// that stress cardinality estimators: wide unimodal continuous attributes
/// (elevation), heavily skewed distances, bounded circular attributes
/// (aspect), small-domain categorical attributes (soil/wilderness
/// indicators), and cross-attribute correlation through shared latent
/// factors (which breaks the independence assumption Postgres-style
/// estimators rely on).
struct ForestOptions {
  int64_t num_rows = 60000;
  int num_attributes = 12;
  uint64_t seed = 42;
};

/// Builds the synthetic forest table. Columns are named "A1".."Am" as in
/// the paper's example queries, all INT64.
storage::Table MakeForestTable(const ForestOptions& options);

}  // namespace qfcard::workload

#endif  // QFCARD_WORKLOAD_FOREST_H_
