#include "workload/imdb.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace qfcard::workload {

namespace {

struct SatelliteSpec {
  const char* name;
  double base_fanout;
  int fanout_cap;
};

constexpr SatelliteSpec kSatellites[] = {
    {"cast_info", 1.8, 6},
    {"movie_info", 1.4, 6},
    {"movie_companies", 0.9, 5},
    {"movie_keyword", 1.2, 6},
    {"movie_info_idx", 0.5, 3},
};

}  // namespace

ImdbDatabase MakeImdbDatabase(const ImdbOptions& options) {
  common::Rng rng(options.seed);
  ImdbDatabase db;
  const int64_t n = options.num_titles;

  // title -------------------------------------------------------------
  std::vector<double> years(static_cast<size_t>(n));
  std::vector<double> popularity(static_cast<size_t>(n));
  {
    storage::Table title("title");
    storage::Column id("id", storage::ColumnType::kInt64);
    storage::Column year("production_year", storage::ColumnType::kInt64);
    storage::Column kind("kind_id", storage::ColumnType::kInt64);
    storage::Column season("season_nr", storage::ColumnType::kInt64);
    for (int64_t i = 0; i < n; ++i) {
      id.Append(static_cast<double>(i));
      const double y =
          std::max(1880.0, 2019.0 - std::floor(rng.Exponential(0.04)));
      years[static_cast<size_t>(i)] = y;
      year.Append(y);
      kind.Append(static_cast<double>(rng.Zipf(7, 1.0)));
      season.Append(static_cast<double>(
          rng.Bernoulli(0.25) ? rng.Zipf(15, 1.2) : 0));
      // Popularity drives satellite fanout; correlated with recency so that
      // predicates on production_year interact with join sizes (the
      // correlation JOB-light punishes independence assumptions with).
      const double recency = (y - 1880.0) / 140.0;
      popularity[static_cast<size_t>(i)] =
          std::min(rng.Exponential(1.0), 3.0) * (0.5 + 1.2 * recency);
    }
    QFCARD_CHECK_OK(title.AddColumn(std::move(id)));
    QFCARD_CHECK_OK(title.AddColumn(std::move(year)));
    QFCARD_CHECK_OK(title.AddColumn(std::move(kind)));
    QFCARD_CHECK_OK(title.AddColumn(std::move(season)));
    QFCARD_CHECK_OK(db.catalog.AddTable(std::move(title)));
  }
  db.table_names.push_back("title");

  // satellites ---------------------------------------------------------
  for (const SatelliteSpec& spec : kSatellites) {
    storage::Table table(spec.name);
    storage::Column movie_id("movie_id", storage::ColumnType::kInt64);
    std::vector<int64_t> fanouts(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const double lambda = spec.base_fanout * options.fanout_scale *
                            popularity[static_cast<size_t>(i)];
      // Rounded, capped draw around lambda.
      const double raw = lambda * (0.5 + rng.Uniform01());
      int64_t f = static_cast<int64_t>(std::floor(raw));
      if (rng.Bernoulli(raw - std::floor(raw))) ++f;
      fanouts[static_cast<size_t>(i)] =
          std::min<int64_t>(f, spec.fanout_cap);
      for (int64_t k = 0; k < fanouts[static_cast<size_t>(i)]; ++k) {
        movie_id.Append(static_cast<double>(i));
      }
    }
    const int64_t rows = movie_id.size();
    QFCARD_CHECK_OK(table.AddColumn(std::move(movie_id)));

    const std::string name = spec.name;
    const auto add_zipf = [&](const char* col_name, int64_t domain, double s) {
      storage::Column col(col_name, storage::ColumnType::kInt64);
      for (int64_t r = 0; r < rows; ++r) {
        col.Append(static_cast<double>(rng.Zipf(domain, s)));
      }
      QFCARD_CHECK_OK(table.AddColumn(std::move(col)));
    };
    if (name == "cast_info") {
      add_zipf("role_id", 11, 1.0);
      storage::Column quality("person_quality", storage::ColumnType::kInt64);
      for (int64_t r = 0; r < rows; ++r) {
        quality.Append(std::clamp(std::round(rng.Normal(50.0, 18.0)), 0.0, 100.0));
      }
      QFCARD_CHECK_OK(table.AddColumn(std::move(quality)));
    } else if (name == "movie_info") {
      add_zipf("info_type_id", 110, 1.0);
    } else if (name == "movie_companies") {
      add_zipf("company_id", 500, 1.1);
      add_zipf("company_type_id", 2, 0.5);
    } else if (name == "movie_keyword") {
      add_zipf("keyword_id", 1000, 1.1);
    } else {  // movie_info_idx
      add_zipf("info_type_id", 5, 1.0);
      storage::Column rating("rating", storage::ColumnType::kInt64);
      for (int64_t r = 0; r < rows; ++r) {
        rating.Append(std::clamp(std::round(rng.Normal(62.0, 15.0)), 10.0, 100.0));
      }
      QFCARD_CHECK_OK(table.AddColumn(std::move(rating)));
    }
    QFCARD_CHECK_OK(table.Validate());
    QFCARD_CHECK_OK(db.catalog.AddTable(std::move(table)));
    db.table_names.push_back(name);
    db.graph.AddEdge(query::FkEdge{name, "movie_id", "title", "id"});
  }
  return db;
}

std::vector<query::Query> MakeJobLightWorkload(const ImdbDatabase& db,
                                               const JobLightOptions& options,
                                               common::Rng& rng) {
  // Predicate-eligible columns per table: (column name, is_range).
  struct PredCol {
    const char* table;
    const char* column;
    bool range;
  };
  static constexpr PredCol kPredCols[] = {
      {"title", "production_year", true},
      {"title", "kind_id", false},
      {"title", "season_nr", false},
      {"cast_info", "role_id", false},
      {"cast_info", "person_quality", true},
      {"movie_info", "info_type_id", false},
      {"movie_companies", "company_id", false},
      {"movie_companies", "company_type_id", false},
      {"movie_keyword", "keyword_id", false},
      {"movie_info_idx", "info_type_id", false},
      {"movie_info_idx", "rating", true},
  };

  std::vector<query::Query> out;
  out.reserve(static_cast<size_t>(options.count));
  int attempts = 0;
  while (static_cast<int>(out.size()) < options.count && attempts < options.count * 50) {
    ++attempts;
    query::Query q;
    q.tables.push_back(query::TableRef{"title", "title"});
    const int n_tables =
        static_cast<int>(rng.UniformInt(options.min_tables, options.max_tables));
    const std::vector<int> sat_order = rng.SampleWithoutReplacement(
        static_cast<int>(std::size(kSatellites)), n_tables - 1);
    for (const int s : sat_order) {
      q.tables.push_back(query::TableRef{kSatellites[s].name,
                                         kSatellites[s].name});
    }
    if (!db.graph.PopulateJoins(db.catalog, q).ok()) continue;

    // Candidate predicate columns restricted to the chosen tables.
    std::vector<std::pair<int, const PredCol*>> candidates;  // (slot, col)
    for (size_t slot = 0; slot < q.tables.size(); ++slot) {
      for (const PredCol& pc : kPredCols) {
        if (q.tables[slot].name == pc.table) {
          candidates.push_back({static_cast<int>(slot), &pc});
        }
      }
    }
    const int n_preds = static_cast<int>(rng.UniformInt(
        options.min_pred_attrs,
        std::min<int64_t>(options.max_pred_attrs,
                          static_cast<int64_t>(candidates.size()))));
    const std::vector<int> chosen = rng.SampleWithoutReplacement(
        static_cast<int>(candidates.size()), n_preds);
    bool ok = true;
    for (const int ci : chosen) {
      const auto& [slot, pc] = candidates[static_cast<size_t>(ci)];
      const auto table_or = db.catalog.GetTable(pc->table);
      if (!table_or.ok()) {
        ok = false;
        break;
      }
      const storage::Table& table = *table_or.value();
      const auto col_or = table.ColumnIndex(pc->column);
      if (!col_or.ok()) {
        ok = false;
        break;
      }
      const int col = col_or.value();
      const storage::Column& column = table.column(col);
      query::CompoundPredicate cp;
      cp.col = query::ColumnRef{slot, col};
      query::ConjunctiveClause clause;
      if (pc->range) {
        // Closed range between two sampled data values (at most one range
        // per attribute, as in JOB-light).
        double a = column.Get(rng.UniformInt(0, column.size() - 1));
        double b = column.Get(rng.UniformInt(0, column.size() - 1));
        if (a > b) std::swap(a, b);
        clause.preds.push_back(
            query::SimplePredicate{cp.col, query::CmpOp::kGe, a});
        clause.preds.push_back(
            query::SimplePredicate{cp.col, query::CmpOp::kLe, b});
      } else {
        const double v = column.Get(rng.UniformInt(0, column.size() - 1));
        clause.preds.push_back(
            query::SimplePredicate{cp.col, query::CmpOp::kEq, v});
      }
      cp.disjuncts.push_back(std::move(clause));
      q.predicates.push_back(std::move(cp));
    }
    if (!ok) continue;
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace qfcard::workload
