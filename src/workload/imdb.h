#ifndef QFCARD_WORKLOAD_IMDB_H_
#define QFCARD_WORKLOAD_IMDB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "query/query.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"

namespace qfcard::workload {

/// Parameters for the synthetic IMDb-like database. The real IMDb dataset
/// (2.5M movies) is substituted by a generator reproducing what makes
/// JOB-light hard: a fact table (`title`) referenced by five satellite
/// tables via key/foreign-key edges, with *skewed, year-correlated fanout*
/// (popular/recent titles have many cast and info rows), and skewed
/// categorical attributes. Estimators assuming fanout/predicate
/// independence misestimate exactly as they do on real IMDb.
struct ImdbOptions {
  int64_t num_titles = 30000;
  double fanout_scale = 1.0;
  uint64_t seed = 7;
};

/// The generated database: catalog plus key/foreign-key graph.
struct ImdbDatabase {
  storage::Catalog catalog;
  query::SchemaGraph graph;
  /// All table names, title first.
  std::vector<std::string> table_names;
};

/// Builds the six-table synthetic IMDb database:
///   title(id, production_year, kind_id, season_nr)
///   cast_info(movie_id, role_id, person_quality)
///   movie_info(movie_id, info_type_id)
///   movie_companies(movie_id, company_id, company_type_id)
///   movie_keyword(movie_id, keyword_id)
///   movie_info_idx(movie_id, info_type_id, rating)
ImdbDatabase MakeImdbDatabase(const ImdbOptions& options);

/// Options for JOB-light-style join queries: 2-5 tables (title plus 1-4
/// satellites), conjunctive predicates on 1-4 attributes with at most one
/// point or range predicate per attribute (Section 5's description of
/// JOB-light).
struct JobLightOptions {
  int count = 70;
  int min_tables = 2;
  int max_tables = 5;
  int min_pred_attrs = 1;
  int max_pred_attrs = 4;
};

/// Generates the JOB-light-like workload over `db`. Queries have joins
/// populated along the key/foreign-key graph and deterministic contents for
/// a given `rng` state.
std::vector<query::Query> MakeJobLightWorkload(const ImdbDatabase& db,
                                               const JobLightOptions& options,
                                               common::Rng& rng);

}  // namespace qfcard::workload

#endif  // QFCARD_WORKLOAD_IMDB_H_
