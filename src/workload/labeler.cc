#include "workload/labeler.h"

#include <cstdlib>
#include <fstream>

#include "common/str_util.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "query/normalize.h"

namespace qfcard::workload {

common::StatusOr<std::vector<LabeledQuery>> LabelOnTable(
    const storage::Table& table, const std::vector<query::Query>& queries,
    bool drop_empty) {
  std::vector<LabeledQuery> out;
  out.reserve(queries.size());
  for (const query::Query& q : queries) {
    QFCARD_ASSIGN_OR_RETURN(const int64_t card, query::Executor::Count(table, q));
    if (drop_empty && card == 0) continue;
    out.push_back(LabeledQuery{q, static_cast<double>(card)});
  }
  return out;
}

common::StatusOr<std::vector<LabeledQuery>> LabelOnCatalog(
    const storage::Catalog& catalog, const std::vector<query::Query>& queries,
    bool drop_empty) {
  std::vector<LabeledQuery> out;
  out.reserve(queries.size());
  for (const query::Query& q : queries) {
    QFCARD_ASSIGN_OR_RETURN(const int64_t card,
                            query::JoinExecutor::Count(catalog, q));
    if (drop_empty && card == 0) continue;
    out.push_back(LabeledQuery{q, static_cast<double>(card)});
  }
  return out;
}

common::Status SaveWorkload(const std::vector<LabeledQuery>& queries,
                            const storage::Catalog& catalog,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return common::Status::Internal(
        common::StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  for (const LabeledQuery& lq : queries) {
    QFCARD_ASSIGN_OR_RETURN(const std::string sql,
                            query::QueryToSql(lq.query, catalog));
    out << common::StrFormat("%.17g", lq.card) << '\t' << sql << '\n';
  }
  if (!out.good()) {
    return common::Status::Internal(
        common::StrFormat("write error on '%s'", path.c_str()));
  }
  return common::Status::Ok();
}

common::StatusOr<std::vector<LabeledQuery>> LoadWorkload(
    const storage::Catalog& catalog, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::NotFound(
        common::StrFormat("cannot open '%s'", path.c_str()));
  }
  std::vector<LabeledQuery> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return common::Status::InvalidArgument(common::StrFormat(
          "%s:%d: expected 'card<TAB>sql'", path.c_str(), line_no));
    }
    LabeledQuery lq;
    char* end = nullptr;
    lq.card = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "%s:%d: bad cardinality", path.c_str(), line_no));
    }
    QFCARD_ASSIGN_OR_RETURN(lq.query,
                            query::ParseQuery(line.substr(tab + 1), catalog));
    out.push_back(std::move(lq));
  }
  return out;
}

DriftSplit SplitByNumAttributes(std::vector<LabeledQuery> queries,
                                int max_attrs) {
  DriftSplit split;
  for (LabeledQuery& lq : queries) {
    if (lq.query.NumAttributes() <= max_attrs) {
      split.low.push_back(std::move(lq));
    } else {
      split.high.push_back(std::move(lq));
    }
  }
  return split;
}

}  // namespace qfcard::workload
