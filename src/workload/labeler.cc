#include "workload/labeler.h"

#include <cstdlib>
#include <fstream>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "query/normalize.h"

namespace qfcard::workload {

namespace {

// Shared shape of both labelers: count every query in parallel (each query
// writes only its own slot, so the counts are identical at every
// QFCARD_THREADS setting), then assemble the labeled set serially in input
// order so drop_empty filtering stays deterministic.
common::StatusOr<std::vector<LabeledQuery>> LabelParallel(
    const std::vector<query::Query>& queries, bool drop_empty,
    common::FunctionRef<common::StatusOr<int64_t>(const query::Query&)>
        count) {
  std::vector<int64_t> cards(queries.size(), 0);
  QFCARD_RETURN_IF_ERROR(common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) -> common::Status {
        const size_t idx = static_cast<size_t>(i);
        QFCARD_ASSIGN_OR_RETURN(cards[idx], count(queries[idx]));
        return common::Status::Ok();
      }));
  std::vector<LabeledQuery> out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (drop_empty && cards[i] == 0) continue;
    out.push_back(LabeledQuery{queries[i], static_cast<double>(cards[i])});
  }
  return out;
}

}  // namespace

common::StatusOr<std::vector<LabeledQuery>> LabelOnTable(
    const storage::Table& table, const std::vector<query::Query>& queries,
    bool drop_empty) {
  return LabelParallel(queries, drop_empty, [&](const query::Query& q) {
    return query::Executor::Count(table, q);
  });
}

common::StatusOr<std::vector<LabeledQuery>> LabelOnCatalog(
    const storage::Catalog& catalog, const std::vector<query::Query>& queries,
    bool drop_empty) {
  return LabelParallel(queries, drop_empty, [&](const query::Query& q) {
    return query::JoinExecutor::Count(catalog, q);
  });
}

common::Status SaveWorkload(const std::vector<LabeledQuery>& queries,
                            const storage::Catalog& catalog,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return common::Status::Internal(
        common::StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  for (const LabeledQuery& lq : queries) {
    QFCARD_ASSIGN_OR_RETURN(const std::string sql,
                            query::QueryToSql(lq.query, catalog));
    out << common::StrFormat("%.17g", lq.card) << '\t' << sql << '\n';
  }
  if (!out.good()) {
    return common::Status::Internal(
        common::StrFormat("write error on '%s'", path.c_str()));
  }
  return common::Status::Ok();
}

common::StatusOr<std::vector<LabeledQuery>> LoadWorkload(
    const storage::Catalog& catalog, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::NotFound(
        common::StrFormat("cannot open '%s'", path.c_str()));
  }
  std::vector<LabeledQuery> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return common::Status::InvalidArgument(common::StrFormat(
          "%s:%d: expected 'card<TAB>sql'", path.c_str(), line_no));
    }
    LabeledQuery lq;
    char* end = nullptr;
    lq.card = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "%s:%d: bad cardinality", path.c_str(), line_no));
    }
    QFCARD_ASSIGN_OR_RETURN(lq.query,
                            query::ParseQuery(line.substr(tab + 1), catalog));
    out.push_back(std::move(lq));
  }
  return out;
}

DriftSplit SplitByNumAttributes(std::vector<LabeledQuery> queries,
                                int max_attrs) {
  DriftSplit split;
  for (LabeledQuery& lq : queries) {
    if (lq.query.NumAttributes() <= max_attrs) {
      split.low.push_back(std::move(lq));
    } else {
      split.high.push_back(std::move(lq));
    }
  }
  return split;
}

}  // namespace qfcard::workload
