#ifndef QFCARD_WORKLOAD_LABELER_H_
#define QFCARD_WORKLOAD_LABELER_H_

#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace qfcard::workload {

/// A query paired with its true cardinality (the training/evaluation unit
/// throughout the paper).
struct LabeledQuery {
  query::Query query;
  double card = 0.0;
};

/// Executes single-table `queries` against `table` and returns the labeled
/// set. When `drop_empty` is set, queries with empty results are discarded
/// (the paper "considers only queries with non-empty results").
/// Labeling scans run in parallel on the global thread pool
/// (QFCARD_THREADS); the labeled set is identical at every thread count.
common::StatusOr<std::vector<LabeledQuery>> LabelOnTable(
    const storage::Table& table, const std::vector<query::Query>& queries,
    bool drop_empty);

/// Executes (possibly joined) `queries` against `catalog`, labeling them
/// with exact counts. Parallel like LabelOnTable.
common::StatusOr<std::vector<LabeledQuery>> LabelOnCatalog(
    const storage::Catalog& catalog, const std::vector<query::Query>& queries,
    bool drop_empty);

/// Splits labeled queries into those mentioning at most `max_attrs`
/// attributes and the rest — the query-drift protocol of Section 5.5.1
/// (train on low-dimensional queries, test on high-dimensional ones).
struct DriftSplit {
  std::vector<LabeledQuery> low;   ///< <= max_attrs attributes
  std::vector<LabeledQuery> high;  ///< > max_attrs attributes
};
DriftSplit SplitByNumAttributes(std::vector<LabeledQuery> queries,
                                int max_attrs);

/// Persists a labeled workload as a text file, one "cardinality<TAB>SQL"
/// line per query (SQL via QueryToSql). Enables sharing workloads between
/// runs without re-executing the labeling scan.
common::Status SaveWorkload(const std::vector<LabeledQuery>& queries,
                            const storage::Catalog& catalog,
                            const std::string& path);

/// Loads a workload saved by SaveWorkload, re-parsing each SQL line against
/// `catalog`.
common::StatusOr<std::vector<LabeledQuery>> LoadWorkload(
    const storage::Catalog& catalog, const std::string& path);

}  // namespace qfcard::workload

#endif  // QFCARD_WORKLOAD_LABELER_H_
