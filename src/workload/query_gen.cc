#include "workload/query_gen.h"

#include <algorithm>
#include <set>

namespace qfcard::workload {

PredicateGenOptions ConjunctiveWorkloadOptions(int max_attrs) {
  PredicateGenOptions opts;
  opts.max_attrs = max_attrs;
  return opts;
}

PredicateGenOptions MixedWorkloadOptions(int max_attrs) {
  PredicateGenOptions opts;
  opts.max_attrs = max_attrs;
  opts.min_disjuncts = 1;
  opts.max_disjuncts = 3;  // the paper repeats the generation 1..3 times
  return opts;
}

std::vector<query::Query> GeneratePredicateWorkload(
    const storage::Table& table, int count, const PredicateGenOptions& options,
    common::Rng& rng) {
  std::vector<int> allowed = options.allowed_attrs;
  if (allowed.empty()) {
    for (int c = 0; c < table.num_columns(); ++c) allowed.push_back(c);
  }
  std::vector<query::Query> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    query::Query q;
    q.tables.push_back(query::TableRef{table.name(), table.name()});
    const int k = static_cast<int>(rng.UniformInt(
        options.min_attrs,
        std::min<int64_t>(options.max_attrs,
                          static_cast<int64_t>(allowed.size()))));
    std::vector<int> attr_order = allowed;
    rng.Shuffle(attr_order);
    for (int ai = 0; ai < k; ++ai) {
      const int col_idx = attr_order[static_cast<size_t>(ai)];
      const storage::Column& col = table.column(col_idx);
      if (col.size() == 0) continue;
      query::CompoundPredicate cp;
      cp.col = query::ColumnRef{0, col_idx};
      // The `> 0` guard keeps the draw sequence of pre-existing options
      // byte-identical (Bernoulli consumes a draw).
      if (options.in_list_prob > 0 && rng.Bernoulli(options.in_list_prob)) {
        // IN-list: disjunction of equalities over distinct sampled values.
        const int want = static_cast<int>(
            rng.UniformInt(1, std::max(1, options.max_in_list)));
        std::set<double> values;
        for (int vi = 0; vi < want; ++vi) {
          values.insert(col.Get(rng.UniformInt(0, col.size() - 1)));
        }
        for (const double v : values) {
          query::ConjunctiveClause clause;
          clause.preds.push_back(
              query::SimplePredicate{cp.col, query::CmpOp::kEq, v});
          cp.disjuncts.push_back(std::move(clause));
        }
        q.predicates.push_back(std::move(cp));
        continue;
      }
      // Guarded like in_list_prob; the extra has_dictionary() test runs
      // before any draw so non-string columns cost nothing.
      if (options.like_prob > 0 && col.has_dictionary() &&
          rng.Bernoulli(options.like_prob)) {
        const storage::Dictionary& dict = col.dictionary();
        const int64_t code = static_cast<int64_t>(
            col.Get(rng.UniformInt(0, col.size() - 1)));
        const std::string& value = dict.Value(code);
        const int64_t max_len = std::min<int64_t>(
            static_cast<int64_t>(value.size()),
            std::max(1, options.max_like_prefix));
        const std::string prefix = value.substr(
            0, static_cast<size_t>(rng.UniformInt(1, std::max<int64_t>(
                                                         1, max_len))));
        const storage::PrefixRange range = dict.PrefixCodeRange(prefix);
        query::ConjunctiveClause clause;
        clause.preds.push_back(query::SimplePredicate{
            cp.col, query::CmpOp::kGe, static_cast<double>(range.lo)});
        // Only emit the upper bound when it names an in-dictionary code:
        // QueryToSql prints dict codes as their string values, so an
        // out-of-range hi would not round-trip through the parser.
        if (range.bounded && range.hi < dict.size()) {
          clause.preds.push_back(query::SimplePredicate{
              cp.col, query::CmpOp::kLt, static_cast<double>(range.hi)});
        }
        cp.disjuncts.push_back(std::move(clause));
        q.predicates.push_back(std::move(cp));
        continue;
      }
      const int m = static_cast<int>(
          rng.UniformInt(options.min_disjuncts, options.max_disjuncts));
      for (int d = 0; d < m; ++d) {
        // Closed range between two sampled data values.
        double a = col.Get(rng.UniformInt(0, col.size() - 1));
        double b = col.Get(rng.UniformInt(0, col.size() - 1));
        if (a > b) std::swap(a, b);
        query::ConjunctiveClause clause;
        clause.preds.push_back(
            query::SimplePredicate{cp.col, query::CmpOp::kGe, a});
        clause.preds.push_back(
            query::SimplePredicate{cp.col, query::CmpOp::kLe, b});
        // Not-equal predicates excluding values inside the range.
        const int l =
            static_cast<int>(rng.UniformInt(0, options.max_not_equals));
        std::set<double> excluded;
        for (int ni = 0; ni < l; ++ni) {
          double v;
          if (col.integral() && b - a >= 1.0) {
            v = static_cast<double>(
                rng.UniformInt(static_cast<int64_t>(a), static_cast<int64_t>(b)));
          } else {
            v = col.Get(rng.UniformInt(0, col.size() - 1));
            if (v < a || v > b) continue;
          }
          if (!excluded.insert(v).second) continue;
          clause.preds.push_back(
              query::SimplePredicate{cp.col, query::CmpOp::kNe, v});
        }
        cp.disjuncts.push_back(std::move(clause));
      }
      q.predicates.push_back(std::move(cp));
    }
    if (options.max_group_by_attrs > 0) {
      const int g = static_cast<int>(
          rng.UniformInt(0, options.max_group_by_attrs));
      const std::vector<int> group_attrs = rng.SampleWithoutReplacement(
          table.num_columns(), g);
      for (const int a : group_attrs) {
        q.group_by.push_back(query::ColumnRef{0, a});
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace qfcard::workload
