#ifndef QFCARD_WORKLOAD_QUERY_GEN_H_
#define QFCARD_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "common/random.h"
#include "query/query.h"
#include "storage/table.h"

namespace qfcard::workload {

/// Parameters of the paper's single-table workload generators (Section 5,
/// "Data sets & query workloads"): draw k distinct attributes uniformly at
/// random, generate a closed range predicate per attribute, add l in
/// [0, max_not_equals] not-equal predicates excluding values inside the
/// range; for mixed workloads repeat the per-attribute generation m in
/// [min_disjuncts, max_disjuncts] times and connect the repetitions by OR.
struct PredicateGenOptions {
  int min_attrs = 1;
  int max_attrs = 8;
  int max_not_equals = 5;
  int min_disjuncts = 1;
  int max_disjuncts = 1;  ///< > 1 yields mixed queries (Definition 3.3)
  /// Probability that an attribute's compound predicate is generated as an
  /// IN-list — a disjunction of equality clauses over 1..max_in_list
  /// distinct sampled values — instead of range disjuncts. 0 (the default)
  /// reproduces the paper's workloads and leaves the random stream of
  /// existing seeds untouched. Used by the fuzzer (src/testing/) to cover
  /// the equality-disjunction corner of Definition 3.3.
  double in_list_prob = 0.0;
  int max_in_list = 8;
  /// Probability that a dictionary-encoded string attribute's predicate is
  /// generated as a prefix-LIKE clause: a sampled value's prefix is turned
  /// into the code interval [lo, hi) via Dictionary::PrefixCodeRange — the
  /// exact clause the parser produces for `col LIKE 'prefix%'`. 0 (the
  /// default) leaves the random stream of existing seeds untouched.
  /// Non-string columns ignore this and fall through to range generation.
  double like_prob = 0.0;
  int max_like_prefix = 4;  ///< longest generated prefix, in bytes
  /// Attribute (column) indices eligible for predicates; empty = all.
  std::vector<int> allowed_attrs;
  /// When > 0, each query additionally groups by 0..max_group_by_attrs
  /// randomly chosen attributes (Section 6 extension; the query's result
  /// size becomes the number of groups).
  int max_group_by_attrs = 0;
};

/// Generates `count` single-table queries over `table` (a base table or a
/// materialized sub-schema join). Range endpoints are sampled from actual
/// column values, so most queries have non-empty results.
std::vector<query::Query> GeneratePredicateWorkload(
    const storage::Table& table, int count, const PredicateGenOptions& options,
    common::Rng& rng);

/// Convenience presets matching the paper's two forest workloads.
PredicateGenOptions ConjunctiveWorkloadOptions(int max_attrs);
PredicateGenOptions MixedWorkloadOptions(int max_attrs);

}  // namespace qfcard::workload

#endif  // QFCARD_WORKLOAD_QUERY_GEN_H_
