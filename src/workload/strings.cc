#include "workload/strings.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/str_util.h"

namespace qfcard::workload {

namespace {

// Deterministic syllable pool; stems drawn from it share first syllables, so
// short prefixes ("co", "del") span several stems while longer ones isolate
// one stem family — the interesting regime for prefix-LIKE selectivity.
const char* const kSyllables[] = {
    "al", "ber", "cor", "del", "est", "fen", "gor", "hal", "ivo",
    "jun", "kel", "lor", "mar", "nor", "oby", "pel", "qui", "ros",
    "sol", "tur", "ulm", "ver", "wil", "xan", "yor", "zel"};
constexpr int kNumSyllables =
    static_cast<int>(sizeof(kSyllables) / sizeof(kSyllables[0]));

std::vector<std::string> MakeStems(int n) {
  std::vector<std::string> stems;
  stems.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int a = i % kNumSyllables;
    const int b = (i * 7 + i / kNumSyllables + 3) % kNumSyllables;
    stems.push_back(std::string(kSyllables[a]) + kSyllables[b]);
  }
  return stems;
}

}  // namespace

storage::Table MakeStringsTable(const StringsOptions& options) {
  common::Rng rng(options.seed);
  const int64_t n = options.num_rows;
  const std::vector<std::string> stems = MakeStems(options.num_stems);

  std::vector<std::string> suffixes;
  suffixes.reserve(static_cast<size_t>(options.num_suffixes));
  for (int j = 0; j < options.num_suffixes; ++j) {
    suffixes.push_back(common::StrFormat(
        "%s%02d", kSyllables[(j * 3 + 1) % kNumSyllables], j));
  }

  std::vector<std::string> names;
  std::vector<std::string> categories;
  std::vector<double> prices;
  std::vector<double> stocks;
  names.reserve(static_cast<size_t>(n));
  categories.reserve(static_cast<size_t>(n));
  prices.reserve(static_cast<size_t>(n));
  stocks.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    const int64_t s = rng.Zipf(static_cast<int64_t>(stems.size()),
                               options.stem_skew) - 1;
    const int64_t suf = rng.UniformInt(
        0, static_cast<int64_t>(suffixes.size()) - 1);
    names.push_back(stems[static_cast<size_t>(s)] + "_" +
                    suffixes[static_cast<size_t>(suf)]);
    categories.push_back(common::StrFormat(
        "cat_%02d",
        static_cast<int>(rng.Zipf(options.num_categories, 0.8) - 1)));
    // Price tracks the stem, so string and numeric predicates correlate.
    prices.push_back(static_cast<double>((s + 1) * 50 +
                                         rng.UniformInt(0, 49)));
    stocks.push_back(std::min(std::round(rng.Exponential(1.0 / 40.0)),
                              2000.0));
  }

  storage::Table table("items");
  {
    storage::Column col("name", storage::ColumnType::kDictString);
    storage::Dictionary dict = storage::Dictionary::FromValues(names);
    col.Reserve(static_cast<size_t>(n));
    for (const std::string& v : names) {
      col.Append(static_cast<double>(*dict.Code(v)));
    }
    col.SetDictionary(std::move(dict));
    (void)table.AddColumn(std::move(col));
  }
  {
    storage::Column col("category", storage::ColumnType::kDictString);
    storage::Dictionary dict = storage::Dictionary::FromValues(categories);
    col.Reserve(static_cast<size_t>(n));
    for (const std::string& v : categories) {
      col.Append(static_cast<double>(*dict.Code(v)));
    }
    col.SetDictionary(std::move(dict));
    (void)table.AddColumn(std::move(col));
  }
  {
    storage::Column col("price", storage::ColumnType::kInt64);
    col.AppendBatch(prices);
    (void)table.AddColumn(std::move(col));
  }
  {
    storage::Column col("stock", storage::ColumnType::kInt64);
    col.AppendBatch(stocks);
    (void)table.AddColumn(std::move(col));
  }
  return table;
}

}  // namespace qfcard::workload
