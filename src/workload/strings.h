#ifndef QFCARD_WORKLOAD_STRINGS_H_
#define QFCARD_WORKLOAD_STRINGS_H_

#include <cstdint>

#include "storage/table.h"

namespace qfcard::workload {

/// Parameters for the synthetic string-predicate table (Section 6's
/// dictionary-encoding discussion). The generator produces dictionary-
/// encoded string columns whose values share prefixes — built as
/// stem+suffix compounds with Zipf-selected stems — so prefix-LIKE
/// predicates select meaningful, skewed code ranges instead of single
/// values, plus integer columns correlated with the stems (breaking the
/// attribute-independence assumption, as the forest generator does).
struct StringsOptions {
  int64_t num_rows = 20000;
  int num_stems = 40;      ///< distinct name stems (prefix families)
  int num_suffixes = 30;   ///< suffixes compounded onto each stem
  int num_categories = 24; ///< domain of the low-cardinality string column
  double stem_skew = 1.1;  ///< Zipf exponent of stem popularity
  uint64_t seed = 20230601;
};

/// Builds the "items" table:
///   name     DICT_STRING  stem+suffix compounds, Zipf-skewed stems
///   category DICT_STRING  small skewed domain
///   price    INT64        correlated with the name's stem
///   stock    INT64        right-skewed, independent
storage::Table MakeStringsTable(const StringsOptions& options);

}  // namespace qfcard::workload

#endif  // QFCARD_WORKLOAD_STRINGS_H_
