// Unit tests for the online-adaptation subsystem (src/adapt/,
// docs/adaptive.md): the feedback bus ring and fan-out contract, the kNN
// store's determinism and bounded eviction, residual-EWMA convergence on a
// constantly-biased base, the arbiter's margin + hold-off hysteresis (no
// flapping), and the AdaptiveEstimator front end to end — tier stamping
// through serve::ServingEstimator, feedback-driven correction, and batch
// parity with the serial request loop.

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapt/adaptive_estimator.h"
#include "adapt/arbiter.h"
#include "adapt/feedback_bus.h"
#include "adapt/online_knn.h"
#include "adapt/residual.h"
#include "estimators/registry.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "query/executor.h"
#include "serve/fss.h"
#include "serve/serving_estimator.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace qfcard::adapt {
namespace {

query::Query SmallQuery(double le_value) {
  query::Query q = testutil::SingleTableQuery("small");
  testutil::AddPredicate(q, 0, query::CmpOp::kLe, le_value);
  return q;
}

// ---- FeedbackBus ----------------------------------------------------------

TEST(FeedbackBusTest, PublishFillsRecordAndFansOutInSequenceOrder) {
  FeedbackBus bus;
  std::vector<FeedbackRecord> seen;
  const uint64_t id =
      bus.Subscribe([&seen](const FeedbackRecord& r) { seen.push_back(r); });

  for (int i = 0; i < 3; ++i) {
    FeedbackRecord record;
    record.query = SmallQuery(2.0 + i);
    record.true_card = 8.0;
    bus.Publish(std::move(record));
  }

  ASSERT_EQ(seen.size(), 3u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].sequence, i + 1) << "dense publish-order ids";
    EXPECT_EQ(seen[i].fss, serve::FeatureSpaceHash(seen[i].query))
        << "Publish fills fss when the publisher left it 0";
    EXPECT_EQ(seen[i].log_card, ml::CardToLabel(8.0));
  }
  EXPECT_EQ(bus.published(), 3u);
  EXPECT_EQ(bus.dropped(), 0u);
  bus.Unsubscribe(id);
}

TEST(FeedbackBusTest, RingBoundsRetainNewestAndCountDrops) {
  FeedbackBusOptions options;
  options.capacity = 4;
  FeedbackBus bus(options);
  for (int i = 0; i < 6; ++i) {
    FeedbackRecord record;
    record.query = SmallQuery(1.0 + i);
    record.true_card = 1.0 + i;
    bus.Publish(std::move(record));
  }
  EXPECT_EQ(bus.published(), 6u);
  EXPECT_EQ(bus.dropped(), 2u);
  EXPECT_EQ(bus.size(), 4u);
  const std::vector<FeedbackRecord> ring = bus.Snapshot();
  ASSERT_EQ(ring.size(), 4u);
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].sequence, i + 3) << "oldest first, oldest two dropped";
  }
}

TEST(FeedbackBusTest, UnsubscribeStopsDelivery) {
  FeedbackBus bus;
  int delivered = 0;
  const uint64_t id =
      bus.Subscribe([&delivered](const FeedbackRecord&) { ++delivered; });
  FeedbackRecord record;
  record.query = SmallQuery(3.0);
  bus.Publish(record);
  bus.Unsubscribe(id);
  bus.Publish(record);
  EXPECT_EQ(delivered, 1);
}

TEST(FeedbackBusTest, TrueCardClampedToOne) {
  FeedbackBus bus;
  FeedbackRecord record;
  record.query = SmallQuery(3.0);
  record.true_card = 0.0;  // empty result: label space needs >= 1
  bus.Publish(std::move(record));
  const std::vector<FeedbackRecord> ring = bus.Snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].true_card, 1.0);
  EXPECT_EQ(ring[0].log_card, 0.0);
}

// ---- OnlineKnn ------------------------------------------------------------

TEST(OnlineKnnTest, ExactMatchReturnsStoredValueAndFeedOrderIsDeterministic) {
  OnlineKnn a;
  OnlineKnn b;
  const uint64_t fss = 77;
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 12; ++i) {
    points.push_back({static_cast<float>(i), static_cast<float>(i % 3)});
  }
  for (size_t i = 0; i < points.size(); ++i) {
    a.Observe(fss, points[i], static_cast<double>(i) + 0.5);
    b.Observe(fss, points[i], static_cast<double>(i) + 0.5);
  }

  // An exact feature match short-circuits to that neighbor's stored target.
  const std::optional<double> exact = a.PredictLog(fss, points[4]);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(*exact, 4.5);

  // Identically-fed stores answer identically on interpolated probes.
  for (float x = 0.25f; x < 11.0f; x += 1.0f) {
    const std::vector<float> probe = {x, 1.0f};
    const std::optional<double> pa = a.PredictLog(fss, probe);
    const std::optional<double> pb = b.PredictLog(fss, probe);
    ASSERT_TRUE(pa.has_value());
    ASSERT_TRUE(pb.has_value());
    EXPECT_EQ(*pa, *pb) << "byte-identical for a fixed observation order";
  }
}

TEST(OnlineKnnTest, NearDuplicateRefinesInPlaceInsteadOfInserting) {
  OnlineKnnOptions options;
  options.learning_rate = 0.5;
  OnlineKnn knn(options);
  const uint64_t fss = 5;
  const std::vector<float> point = {1.0f, 2.0f};
  knn.Observe(fss, point, 10.0);
  knn.Observe(fss, point, 20.0);
  EXPECT_EQ(knn.NeighborCount(fss), 1u) << "refined, not duplicated";
  const std::optional<double> log = knn.PredictLog(fss, point);
  ASSERT_TRUE(log.has_value());
  EXPECT_DOUBLE_EQ(*log, 15.0) << "EWMA with learning_rate 0.5";
}

TEST(OnlineKnnTest, EvictionKeepsPerRouteAndGlobalBounds) {
  OnlineKnnOptions options;
  options.capacity_per_route = 4;
  options.max_routes = 2;
  OnlineKnn knn(options);

  for (int i = 0; i < 6; ++i) {
    knn.Observe(1, {static_cast<float>(10 * i)}, static_cast<double>(i));
  }
  EXPECT_EQ(knn.NeighborCount(1), 4u) << "per-route capacity enforced";

  // The least recently written neighbors (0 and 1) were evicted: their
  // exact vectors no longer short-circuit to the stored value.
  const std::optional<double> evicted = knn.PredictLog(1, {0.0f});
  ASSERT_TRUE(evicted.has_value());
  EXPECT_NE(*evicted, 0.0);
  const std::optional<double> retained = knn.PredictLog(1, {50.0f});
  ASSERT_TRUE(retained.has_value());
  EXPECT_DOUBLE_EQ(*retained, 5.0);

  // A third route evicts the stalest route wholesale.
  knn.Observe(2, {1.0f}, 1.0);
  knn.Observe(3, {1.0f}, 1.0);
  EXPECT_EQ(knn.RouteCount(), 2u);
  EXPECT_EQ(knn.NeighborCount(1), 0u) << "route 1 had the oldest last write";
  EXPECT_GT(knn.SizeBytes(), 0u);
}

TEST(OnlineKnnTest, UnknownRouteReturnsNullopt) {
  OnlineKnn knn;
  EXPECT_FALSE(knn.PredictLog(123, {1.0f}).has_value());
  EXPECT_EQ(knn.NeighborCount(123), 0u);
}

// ---- ResidualCorrector ----------------------------------------------------

TEST(ResidualCorrectorTest, ConvergesOnConstantlyBiasedBase) {
  ResidualCorrector corrector;
  const uint64_t fss = 9;
  const double base = 100.0;

  // Below min_observations the correction must not engage.
  corrector.Observe(fss, base, 4.0 * base);
  EXPECT_DOUBLE_EQ(corrector.Correct(fss, base), base);

  // The base is consistently 4x too low (log2 residual = 2): the EWMA bias
  // walks to 2 and Correct approaches base * 2^2.
  for (int i = 0; i < 24; ++i) {
    corrector.Observe(fss, base, 4.0 * base);
  }
  const auto state = corrector.StateFor(fss);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->observed, 25u);
  EXPECT_NEAR(state->bias, 2.0, 0.05);
  EXPECT_NEAR(corrector.Correct(fss, base), 4.0 * base, 0.2 * base);

  // Unknown routes pass the base through untouched.
  EXPECT_DOUBLE_EQ(corrector.Correct(12345, base), base);
}

TEST(ResidualCorrectorTest, RouteEvictionKeepsBound) {
  ResidualOptions options;
  options.max_routes = 2;
  ResidualCorrector corrector(options);
  corrector.Observe(1, 10.0, 20.0);
  corrector.Observe(2, 10.0, 20.0);
  corrector.Observe(3, 10.0, 20.0);
  EXPECT_EQ(corrector.RouteCount(), 2u);
  EXPECT_FALSE(corrector.StateFor(1).has_value())
      << "least recently observed route evicted";
}

// ---- TierArbiter ----------------------------------------------------------

TierArbiterOptions TightArbiter() {
  TierArbiterOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.hold_observations = 4;
  options.switch_margin = 0.8;
  return options;
}

TEST(TierArbiterTest, SwitchesWhenChallengerBeatsIncumbentByMargin) {
  TierArbiter arbiter(TightArbiter());
  const uint64_t fss = 1;
  EXPECT_EQ(arbiter.Choose(fss).tier, est::ServedTier::kMl)
      << "initial tier before any evidence";

  for (int i = 0; i < 6; ++i) {
    arbiter.ObserveTier(fss, est::ServedTier::kMl, 10.0);
    arbiter.ObserveTier(fss, est::ServedTier::kHistogramResidual, 1.5);
  }
  EXPECT_EQ(arbiter.Choose(fss).tier, est::ServedTier::kHistogramResidual);
  EXPECT_EQ(arbiter.switches(), 1u);
  const std::vector<TierArbiter::TierSwitch> log = arbiter.RecentSwitches();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, est::ServedTier::kMl);
  EXPECT_EQ(log[0].to, est::ServedTier::kHistogramResidual);
  EXPECT_NE(arbiter.Choose(fss).reason.find("ml->residual"),
            std::string::npos);
  EXPECT_EQ(arbiter.RouteCount(), 1u);
}

TEST(TierArbiterTest, NoFlappingInsideTheSwitchMargin) {
  TierArbiter arbiter(TightArbiter());
  const uint64_t fss = 2;
  // residual is slightly better (4.5 vs 5.0) but not by the 0.8 margin:
  // the incumbent must keep the route no matter how long this persists.
  for (int i = 0; i < 40; ++i) {
    arbiter.ObserveTier(fss, est::ServedTier::kMl, 5.0);
    arbiter.ObserveTier(fss, est::ServedTier::kHistogramResidual, 4.5);
  }
  EXPECT_EQ(arbiter.switches(), 0u);
  EXPECT_EQ(arbiter.Choose(fss).tier, est::ServedTier::kMl);
}

TEST(TierArbiterTest, HoldObservationsBlockImmediateSwitchBack) {
  TierArbiter arbiter(TightArbiter());
  const uint64_t fss = 3;
  for (int i = 0; i < 6; ++i) {
    arbiter.ObserveTier(fss, est::ServedTier::kMl, 10.0);
    arbiter.ObserveTier(fss, est::ServedTier::kHistogramResidual, 1.5);
  }
  ASSERT_EQ(arbiter.switches(), 1u) << "demoted away from the stale ml tier";

  // The ML tier improves wholesale right after the switch. Within the
  // hold-off window nothing may move; once the hold expires and the ml
  // window has flushed its stale q-errors, the route promotes back.
  for (int i = 0; i < 3; ++i) {
    arbiter.ObserveTier(fss, est::ServedTier::kMl, 1.0);
    EXPECT_EQ(arbiter.switches(), 1u) << "hold-off must absorb observation "
                                      << i;
  }
  for (int i = 0; i < 12; ++i) {
    arbiter.ObserveTier(fss, est::ServedTier::kMl, 1.0);
    arbiter.ObserveTier(fss, est::ServedTier::kHistogramResidual, 1.5);
  }
  EXPECT_EQ(arbiter.switches(), 2u);
  EXPECT_EQ(arbiter.Choose(fss).tier, est::ServedTier::kMl)
      << "recovered ml wins the route back exactly once — no flapping";
}

TEST(TierArbiterTest, ResetTierConcedesToMeasuredChallenger) {
  TierArbiter arbiter(TightArbiter());
  const uint64_t fss = 4;
  // Incumbent ml measured at 2.0; residual at 1.9 — inside the margin, so
  // no switch...
  for (int i = 0; i < 6; ++i) {
    arbiter.ObserveTier(fss, est::ServedTier::kMl, 2.0);
    arbiter.ObserveTier(fss, est::ServedTier::kHistogramResidual, 1.9);
  }
  EXPECT_EQ(arbiter.switches(), 0u);
  EXPECT_GT(arbiter.TierP95(fss, est::ServedTier::kMl), 0.0);

  // ...until a model hot-swap erases the ml history: the truly empty
  // incumbent window concedes to any measured challenger.
  arbiter.ResetTier(est::ServedTier::kMl);
  EXPECT_EQ(arbiter.TierP95(fss, est::ServedTier::kMl), 0.0);
  arbiter.ObserveTier(fss, est::ServedTier::kHistogramResidual, 1.9);
  EXPECT_EQ(arbiter.switches(), 1u);
  EXPECT_EQ(arbiter.Choose(fss).tier, est::ServedTier::kHistogramResidual);
}

// ---- AdaptiveEstimator ----------------------------------------------------

struct AdaptiveFixture {
  storage::Catalog catalog = testutil::SmallCatalog();
  std::shared_ptr<const est::CardinalityEstimator> base;
  std::shared_ptr<serve::ServingEstimator> serving;
  std::shared_ptr<const featurize::Featurizer> featurizer;

  explicit AdaptiveFixture(uint64_t version = 7) {
    base = std::shared_ptr<const est::CardinalityEstimator>(
        est::MakeEstimator("postgres", catalog).value());
    serving = std::make_shared<serve::ServingEstimator>(base, version);
    featurizer = std::shared_ptr<const featurize::Featurizer>(
        featurize::MakeFeaturizer(
            featurize::QftKind::kComplex,
            featurize::FeatureSchema::FromTable(catalog.table(0))));
  }

  std::unique_ptr<AdaptiveEstimator> Make(AdaptiveMode mode) const {
    AdaptiveOptions options;
    options.mode = mode;
    options.arbiter = TightArbiter();
    return std::make_unique<AdaptiveEstimator>(base, serving, featurizer,
                                               options);
  }
};

FeedbackRecord Feedback(const query::Query& q, double true_card) {
  FeedbackRecord record;
  record.query = q;
  record.true_card = true_card;
  return record;
}

TEST(AdaptiveEstimatorTest, TierStampSurvivesServingEstimatorWrap) {
  const AdaptiveFixture fx;
  std::shared_ptr<const est::CardinalityEstimator> front =
      fx.Make(AdaptiveMode::kResidualOnly);
  const serve::ServingEstimator outer(front, 42);

  est::EstimateRequest request;
  request.query = SmallQuery(4.0);
  const auto resp = outer.Estimate(request);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().tier, est::ServedTier::kHistogramResidual)
      << "the serving wrapper must pass the inner tier stamp through";
  EXPECT_EQ(resp.value().model_version, 42u);
  EXPECT_FALSE(resp.value().tier_reason.empty());
}

TEST(AdaptiveEstimatorTest, ResidualTierLearnsFromBusFeedback) {
  const AdaptiveFixture fx;
  const std::unique_ptr<AdaptiveEstimator> front =
      fx.Make(AdaptiveMode::kResidualOnly);
  FeedbackBus bus;
  front->ConnectTo(&bus);

  const query::Query q = SmallQuery(6.0);
  const double before = front->EstimateCard(q).value();

  // The truth is consistently 4x the base estimate for this route: the
  // residual tier must pull estimates up toward it.
  const double base_est = fx.base->EstimateCard(q).value();
  for (int i = 0; i < 24; ++i) {
    bus.Publish(Feedback(q, 4.0 * base_est));
  }
  const double after = front->EstimateCard(q).value();
  EXPECT_GT(after, before);
  EXPECT_NEAR(after, 4.0 * base_est, 0.25 * base_est);
  EXPECT_EQ(front->ingested(), 24u);
  front->Disconnect();

  // Disconnected: further feedback must not move the estimate.
  bus.Publish(Feedback(q, 400.0 * base_est));
  EXPECT_EQ(front->EstimateCard(q).value(), after);
}

TEST(AdaptiveEstimatorTest, KnnTierFallsBackToMlUntilItHasNeighbors) {
  const AdaptiveFixture fx;
  const std::unique_ptr<AdaptiveEstimator> front =
      fx.Make(AdaptiveMode::kKnnOnly);

  est::EstimateRequest request;
  request.query = SmallQuery(5.0);
  const auto cold = front->Estimate(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().tier, est::ServedTier::kMl)
      << "no neighbors yet: the heavy path answers";

  const int64_t truth =
      query::Executor::Count(fx.catalog.table(0), request.query).value();
  front->IngestFeedback(Feedback(request.query, static_cast<double>(truth)));
  const auto warm = front->Estimate(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().tier, est::ServedTier::kKnn);
  // Exact feature match: the stored log2 cardinality round-trips (float
  // label precision) back to the executed truth.
  EXPECT_NEAR(warm.value().estimate, static_cast<double>(truth),
              0.01 * static_cast<double>(truth) + 0.01);
}

TEST(AdaptiveEstimatorTest, RequestBatchMatchesSerialLoopByteForByte) {
  const AdaptiveFixture fx;
  const std::unique_ptr<AdaptiveEstimator> front = fx.Make(AdaptiveMode::kAuto);
  for (int i = 0; i < 8; ++i) {
    front->IngestFeedback(Feedback(SmallQuery(1.0 + i), 2.0 + i));
  }

  std::vector<est::EstimateRequest> requests;
  for (int i = 0; i < 10; ++i) {
    est::EstimateRequest request;
    request.query = SmallQuery(0.5 + i);
    requests.push_back(request);
  }
  const auto batch = front->EstimateRequests(requests);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto one = front->Estimate(requests[i]);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(batch.value()[i].estimate, one.value().estimate);
    EXPECT_EQ(batch.value()[i].tier, one.value().tier);
  }
  const auto cards = front->EstimateBatch(
      std::vector<query::Query>{requests[0].query, requests[5].query});
  ASSERT_TRUE(cards.ok());
  EXPECT_EQ(cards.value()[0], batch.value()[0].estimate);
  EXPECT_EQ(cards.value()[1], batch.value()[5].estimate);
}

TEST(AdaptiveEstimatorTest, MlHotSwapResetsTheMlWindows) {
  const AdaptiveFixture fx;
  const std::unique_ptr<AdaptiveEstimator> front = fx.Make(AdaptiveMode::kAuto);
  front->TrackServingVersion(fx.serving.get());

  // Saturate the route with feedback that makes the stale ml tier lose.
  const query::Query q = SmallQuery(3.0);
  const double base_est = fx.base->EstimateCard(q).value();
  for (int i = 0; i < 12; ++i) {
    front->IngestFeedback(Feedback(q, 50.0 * base_est));
  }
  const uint64_t fss = serve::FeatureSpaceHash(q);
  EXPECT_GT(front->arbiter().TierP95(fss, est::ServedTier::kMl), 0.0);

  // Swap a "retrained" model in: the next feedback record must wipe the ml
  // q-error history so the fresh model is not vetoed by its predecessor.
  fx.serving->Swap(fx.base, /*version=*/99);
  front->IngestFeedback(Feedback(q, 50.0 * base_est));
  // The reset dropped the old window; only the post-swap observation backs
  // the new one, which stays below min_samples for a few records.
  EXPECT_EQ(front->arbiter().TierP95(fss, est::ServedTier::kMl), 0.0);
}

TEST(AdaptiveEstimatorTest, TrainIsRejectedAndInfoReportsOnlineLearning) {
  const AdaptiveFixture fx;
  const std::unique_ptr<AdaptiveEstimator> front = fx.Make(AdaptiveMode::kAuto);
  EXPECT_FALSE(front->Train({}, {}, 0.1, 1).ok())
      << "the front learns online; training targets the inner ML path";
  const est::EstimatorInfo info = AdaptiveEstimatorInfo();
  EXPECT_TRUE(info.learns_online);
  EXPECT_FALSE(info.needs_training);
  EXPECT_NE(front->name().find("auto"), std::string::npos);
}

}  // namespace
}  // namespace qfcard::adapt
