"""Self-test for tools/qfcard_analyze.py against the miniature project at
tools/testdata/analyze_proj/ (docs/static_analysis.md).

The fixture tree seeds one violation per pass — an upward layer include, an
include cycle, a lock-order cycle, an unannotated guarded member, a
discarded Status, an unregistered metric, a dead catalog entry, and a
required-but-uncatalogued series — plus the suppression-contract cases:
a justified suppression per rule (must silence exactly that rule), one
reasonless suppression (itself a finding), and one suppression naming the
wrong rule (must not silence).

Source-file expectations are `// expect: <rule>` markers on the finding
line; the two schema-side findings are asserted explicitly because
tools/metrics_schema.json cannot carry C++ comments.

Run directly (python3 tests/analyze_test.py) or via ctest (analyze_selftest).
"""

import json
import pathlib
import re
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parent.parent
ANALYZE = ROOT / "tools" / "qfcard_analyze.py"
FIXTURE = ROOT / "tools" / "testdata" / "analyze_proj"

EXPECT_RE = re.compile(r"//\s*expect:\s*(?P<rules>[\w-]+(?:\s+[\w-]+)*)")
FINDING_RE = re.compile(
    r"^(?P<file>.+?):(?P<line>\d+): \[(?P<rule>[\w-]+)\] (?P<msg>.*)$")


def expected_from_markers() -> set:
    out = set()
    for path in sorted(FIXTURE.glob("src/**/*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(FIXTURE / "src").as_posix()
        for idx, line in enumerate(path.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group("rules").split():
                    out.add((rel, idx, rule))
    return out


def run_analyzer(*extra_args: str, root: pathlib.Path = FIXTURE):
    proc = subprocess.run(
        [sys.executable, str(ANALYZE), "--root", str(root)] +
        list(extra_args),
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("file"), int(m.group("line")),
                             m.group("rule"), m.group("msg")))
    return proc, findings


class AnalyzeSelfTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.json_path = pathlib.Path(tempfile.mkstemp(suffix=".json")[1])
        cls.proc, cls.findings = run_analyzer("--json", str(cls.json_path))
        cls.report = json.loads(cls.json_path.read_text())

    @classmethod
    def tearDownClass(cls):
        cls.json_path.unlink(missing_ok=True)

    def test_exit_status_and_marker_parity(self):
        self.assertEqual(self.proc.returncode, 1,
                         self.proc.stdout + self.proc.stderr)
        source_findings = {(f, l, r) for f, l, r, _ in self.findings
                           if f != "tools/metrics_schema.json"}
        self.assertEqual(source_findings, expected_from_markers(),
                         "findings diverge from // expect markers:\n"
                         + self.proc.stdout)

    def test_schema_side_findings(self):
        schema = [(r, m) for f, _, r, m in self.findings
                  if f == "tools/metrics_schema.json"]
        self.assertEqual(len(schema), 2, self.proc.stdout)
        self.assertTrue(any("dead.counter" in m for _, m in schema))
        self.assertTrue(any("orphan.required" in m for _, m in schema))
        self.assertTrue(all(r == "telemetry" for r, _ in schema))

    def test_each_pass_contributes(self):
        rules = {r for _, _, r, _ in self.findings}
        self.assertEqual(rules, {"layer", "include-cycle", "guarded-by",
                                 "lock-order", "error-policy",
                                 "discarded-status", "telemetry"})

    def test_justified_suppressions_silence_exactly_their_rule(self):
        out = self.proc.stdout
        # ok(layer) on the serve/api2.h include; ok(guarded-by) on noted_;
        # ok(telemetry) on justified.counter — all with reasons, all silent.
        self.assertNotIn("api2.h", out)
        self.assertNotIn("noted_", out)
        self.assertNotIn("justified.counter", out)
        # The wrong-rule suppression on mismatched_ must NOT silence.
        self.assertIn("mismatched_", out)

    def test_reasonless_suppression_is_a_finding(self):
        lazy = [(f, l, r, m) for f, l, r, m in self.findings
                if "suppression has no reason" in m]
        self.assertEqual(len(lazy), 1, self.proc.stdout)
        self.assertEqual(lazy[0][0], "storage/store.h")
        self.assertEqual(lazy[0][2], "guarded-by")

    def test_json_report_graphs(self):
        include_graph = self.report["include_graph"]
        self.assertEqual(include_graph["cycles"],
                         ["query/a.h -> query/b.h -> query/a.h"])
        lock = self.report["lock_graph"]
        self.assertEqual(lock["cycle"],
                         ["Pair::a_", "Pair::b_", "Pair::a_"])
        # The justified lock-order suppression drops the edge from the graph
        # but records it for audit.
        sup = lock["suppressed_edges"]
        self.assertEqual(len(sup), 1, sup)
        self.assertEqual((sup[0]["from"], sup[0]["to"]),
                         ("Quiet::c_", "Quiet::d_"))
        self.assertNotIn("Quiet::c_", [e["from"] for e in lock["edges"]])

    def test_check_schema_runs_only_telemetry(self):
        proc, findings = run_analyzer("--check-schema")
        self.assertEqual(proc.returncode, 1)
        self.assertTrue(all(r == "telemetry" for _, _, r, _ in findings),
                        proc.stdout)

    def test_deleting_catalog_entry_fails(self):
        # Acceptance check from the analyzer's contract: removing a
        # registered series from the catalog must fail --check-schema.
        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            for sub in ("tools", "src"):
                dst = tmp / sub
                dst.mkdir()
                for p in sorted((FIXTURE / sub).rglob("*")):
                    if p.is_file():
                        target = dst / p.relative_to(FIXTURE / sub)
                        target.parent.mkdir(parents=True, exist_ok=True)
                        target.write_text(p.read_text())
            schema_path = tmp / "tools" / "metrics_schema.json"
            schema = json.loads(schema_path.read_text())
            schema["catalog"]["counters"].remove("good.counter")
            schema_path.write_text(json.dumps(schema))
            proc, findings = run_analyzer("--check-schema", root=tmp)
            self.assertEqual(proc.returncode, 1)
            self.assertTrue(any("good.counter" in m
                                for _, _, _, m in findings), proc.stdout)

    def test_repo_is_clean(self):
        proc, findings = run_analyzer(root=ROOT)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main()
