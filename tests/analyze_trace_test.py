"""Self-test for tools/analyze_trace.py (docs/observability.md).

Builds synthetic trace dumps in both supported formats — the span-ring JSON
of --trace-out and the Chrome trace-event JSON of --trace-events-out — and
checks the analyzer's verdicts: a fully connected two-request tree passes
under every strict flag, an orphaned span fails --fail-on-orphans, a
disconnected request fails --require-connected, rejected (errored) roots do
not count toward --min-requests, and a structurally broken dump is rejected
outright.

Run directly (python3 tests/analyze_trace_test.py) or via ctest
(analyze_trace_selftest).
"""

import importlib.util
import io
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

ROOT = pathlib.Path(__file__).resolve().parent.parent
TOOL = ROOT / "tools" / "analyze_trace.py"

spec = importlib.util.spec_from_file_location("analyze_trace", TOOL)
analyze_trace = importlib.util.module_from_spec(spec)
spec.loader.exec_module(analyze_trace)


def ring_span(sid, parent, trace, name, dur=0.001, error=False, links=(),
              route=0, start=0.0):
    return {"id": sid, "parent": parent, "trace": trace, "route": route,
            "tid": 0, "error": error, "name": name, "start_s": start,
            "duration_s": dur, "links": list(links)}


def connected_two_request_spans():
    """Two requests; the second is served by the first's batch via a link."""
    return [
        ring_span(2, 1, 1, "serve.submit"),
        ring_span(3, 1, 1, "serve.queue_wait", dur=0.002),
        ring_span(11, 10, 10, "serve.submit"),
        ring_span(12, 10, 10, "serve.queue_wait", dur=0.004),
        ring_span(6, 5, 1, "estimate.featurize", dur=0.003),
        ring_span(7, 5, 1, "estimate.predict", dur=0.001),
        ring_span(5, 4, 1, "estimate.batch", dur=0.005),
        ring_span(4, 1, 1, "serve.batch", dur=0.006, links=[10]),
        ring_span(1, 0, 1, "serve.request", dur=0.010),
        ring_span(10, 0, 10, "serve.request", dur=0.012),
    ]


def ring_doc(spans):
    return {"capacity": 4096, "recorded": len(spans), "dropped": 0,
            "retained": 0, "tail_sampled": 0, "tail_dropped": 0,
            "spans": spans}


def trace_event_doc(spans):
    """The same span list in Chrome trace-event form."""
    events = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "qfcard (unrouted)"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "thread 0"}},
    ]
    for s in spans:
        events.append({
            "name": s["name"], "cat": "qfcard", "ph": "X",
            "ts": s["start_s"] * 1e6, "dur": s["duration_s"] * 1e6,
            "pid": 1, "tid": s["tid"],
            "args": {"span": s["id"], "parent": s["parent"],
                     "trace": s["trace"], "error": s["error"],
                     "links": s["links"]}})
        for link in s["links"]:
            events.append({"name": "request", "cat": "qfcard.flow",
                           "ph": "s", "id": link, "pid": 1, "tid": 0,
                           "ts": 0.0})
            events.append({"name": "request", "cat": "qfcard.flow",
                           "ph": "f", "bp": "e", "id": link, "pid": 1,
                           "tid": s["tid"], "ts": s["start_s"] * 1e6})
    return {"displayTimeUnit": "ms", "traceEvents": events}


class AnalyzeTraceTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, doc):
        path = self.dir / name
        path.write_text(json.dumps(doc))
        return str(path)

    def run_tool(self, *argv):
        out = io.StringIO()
        with redirect_stdout(out):
            code = analyze_trace.main(list(argv))
        return code, out.getvalue()

    def test_connected_tree_passes_strict_flags_in_both_formats(self):
        spans = connected_two_request_spans()
        ring = self.write("ring.json", ring_doc(spans))
        events = self.write("events.json", trace_event_doc(spans))
        code, out = self.run_tool(ring, events, "--fail-on-orphans",
                                  "--require-connected", "--min-requests", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("connected: 2/2", out)
        self.assertIn("orphans: 0", out)
        # The stage table covers every attribution stage.
        for stage in ("queue_wait", "batch_exec", "featurize", "predict",
                      "total"):
            self.assertIn(stage, out)

    def test_orphaned_span_fails_fail_on_orphans(self):
        spans = connected_two_request_spans()
        spans.append(ring_span(99, 999, 1, "estimate.batch"))  # parent 999
        path = self.write("orphan.json", ring_doc(spans))
        code, out = self.run_tool(path)  # informational without the flag
        self.assertEqual(code, 0, out)
        self.assertIn("orphans: 1", out)
        code, _ = self.run_tool(path, "--fail-on-orphans")
        self.assertEqual(code, 1)

    def test_disconnected_request_fails_require_connected(self):
        spans = connected_two_request_spans()
        # A third request with no serve.batch anywhere in its trace.
        spans.append(ring_span(21, 20, 20, "serve.submit"))
        spans.append(ring_span(20, 0, 20, "serve.request", dur=0.02))
        path = self.write("disconnected.json", ring_doc(spans))
        code, _ = self.run_tool(path)
        self.assertEqual(code, 0)
        code, _ = self.run_tool(path, "--require-connected")
        self.assertEqual(code, 1)

    def test_rejected_roots_do_not_count_as_completed(self):
        spans = connected_two_request_spans()
        spans.append(ring_span(31, 30, 30, "serve.submit", error=True))
        spans.append(ring_span(30, 0, 30, "serve.request", error=True))
        path = self.write("rejected.json", ring_doc(spans))
        code, out = self.run_tool(path, "--min-requests", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("2 completed / 1 rejected", out)
        code, _ = self.run_tool(path, "--min-requests", "3")
        self.assertEqual(code, 1)

    def test_structurally_broken_dumps_are_rejected(self):
        no_recorded = {"capacity": 4, "dropped": 0, "spans": []}
        code, _ = self.run_tool(self.write("broken1.json", no_recorded))
        self.assertEqual(code, 1)
        bad_span = ring_doc([{"id": 1, "name": "x"}])  # missing fields
        code, _ = self.run_tool(self.write("broken2.json", bad_span))
        self.assertEqual(code, 1)
        bad_event = {"traceEvents": [{"name": "x", "ph": "Q", "pid": 1,
                                      "tid": 0}]}
        code, _ = self.run_tool(self.write("broken3.json", bad_event))
        self.assertEqual(code, 1)
        not_json = self.dir / "broken4.json"
        not_json.write_text("{nope")
        code, _ = self.run_tool(str(not_json))
        self.assertEqual(code, 1)

    def test_cli_entry_point(self):
        path = self.write("cli.json",
                          ring_doc(connected_two_request_spans()))
        proc = subprocess.run(
            [sys.executable, str(TOOL), path, "--fail-on-orphans",
             "--require-connected", "--min-requests", "2"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("trace analysis OK", proc.stdout)


if __name__ == "__main__":
    unittest.main()
