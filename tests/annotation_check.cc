// Compile-time probe for thread-safety annotation rot, driven by the
// try_compile gate in tests/CMakeLists.txt. Built twice under Clang with
// -Werror=thread-safety:
//
//   1. Without QFCARD_EXPECT_THREAD_SAFETY_ERROR: only properly locked
//      accesses — must COMPILE. Proves the wrappers don't false-positive.
//   2. With QFCARD_EXPECT_THREAD_SAFETY_ERROR: adds an unlocked write to a
//      GUARDED_BY member — must FAIL to compile. If it ever compiles, the
//      annotation macros have silently degraded to no-ops (wrong compiler
//      guard, stripped attribute, ...) and the whole static layer is off;
//      CMake then aborts the configure with a FATAL_ERROR.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void LockedIncrement() QFCARD_EXCLUDES(mu_) {
    qfcard::common::MutexLock lock(&mu_);
    ++value_;
  }

  int LockedRead() QFCARD_EXCLUDES(mu_) {
    qfcard::common::MutexLock lock(&mu_);
    return value_;
  }

  void IncrementAlreadyLocked() QFCARD_REQUIRES(mu_) { ++value_; }

#ifdef QFCARD_EXPECT_THREAD_SAFETY_ERROR
  // Unlocked access to guarded state: -Werror=thread-safety must reject it.
  int UnlockedRead() { return value_; }
#endif

  qfcard::common::Mutex mu_;

 private:
  int value_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.LockedIncrement();
  {
    qfcard::common::MutexLock lock(&g.mu_);
    g.IncrementAlreadyLocked();
  }
#ifdef QFCARD_EXPECT_THREAD_SAFETY_ERROR
  const int unlocked = g.UnlockedRead();
  (void)unlocked;
#endif
  return g.LockedRead() == 2 ? 0 : 1;
}
