// Parity tests for the batch-first estimation API: every batch entry point
// must return byte-identical results to its serial per-item counterpart, at
// every thread count (docs/batch_api.md).

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "estimators/registry.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "gtest/gtest.h"
#include "ml/matrix.h"
#include "test_util.h"
#include "workload/forest.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::est {
namespace {

// A small forest table plus a labeled mixed workload, built once for the
// whole suite (labeling dominates the setup cost).
struct Fixture {
  storage::Catalog catalog;
  const storage::Table* table;
  std::vector<query::Query> queries;
  std::vector<double> cards;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    workload::ForestOptions fopts;
    fopts.num_rows = 3000;
    fopts.num_attributes = 5;
    QFCARD_CHECK_OK(f->catalog.AddTable(workload::MakeForestTable(fopts)));
    f->table = f->catalog.GetTable("forest").value();
    common::Rng rng(77);
    const std::vector<query::Query> generated =
        workload::GeneratePredicateWorkload(
            *f->table, 300, workload::MixedWorkloadOptions(4), rng);
    const std::vector<workload::LabeledQuery> labeled =
        workload::LabelOnTable(*f->table, generated, true).value();
    for (const workload::LabeledQuery& lq : labeled) {
      f->queries.push_back(lq.query);
      f->cards.push_back(lq.card);
    }
    return f;
  }();
  return *fixture;
}

// Restores serial mode after each test regardless of outcome.
class BatchApiTest : public ::testing::Test {
 protected:
  void TearDown() override { common::SetGlobalThreads(1); }
};

EstimatorOptions FastOptions() {
  EstimatorOptions opts;
  opts.conj.max_partitions = 8;
  opts.gbm.num_trees = 20;
  opts.gbm.max_depth = 4;
  opts.mscn.max_steps = 60;
  opts.mscn.max_epochs = 5;
  opts.nn.max_steps = 60;
  opts.nn.max_epochs = 5;
  return opts;
}

TEST_F(BatchApiTest, FeaturizeBatchMatchesFeaturizeInto) {
  const Fixture& f = GetFixture();
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 8;
  const std::unique_ptr<featurize::Featurizer> featurizer =
      featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                featurize::FeatureSchema::FromTable(*f.table),
                                copts);
  const int n = static_cast<int>(f.queries.size());
  ml::Matrix serial(n, featurizer->dim());
  for (int i = 0; i < n; ++i) {
    QFCARD_CHECK_OK(featurizer->FeaturizeInto(
        f.queries[static_cast<size_t>(i)], serial.Row(i)));
  }
  for (const int threads : {1, 4}) {
    common::SetGlobalThreads(threads);
    ml::Matrix batch(n, featurizer->dim());
    QFCARD_CHECK_OK(featurizer->FeaturizeBatch(
        {f.queries.data(), f.queries.size()}, batch.data().data()));
    EXPECT_EQ(serial.data(), batch.data()) << threads << " threads";
  }
}

// EstimateBatch == the EstimateCard loop for every stateless estimator in
// the comparison set, at 1 and 4 threads.
TEST_F(BatchApiTest, EstimateBatchMatchesSerialLoop) {
  const Fixture& f = GetFixture();
  const EstimatorOptions opts = FastOptions();
  // gb+complex because the fixture workload is mixed (the conjunctive QFT
  // rejects disjunctions).
  for (const std::string& name :
       {std::string("postgres"), std::string("true"),
        std::string("gb+complex")}) {
    common::SetGlobalThreads(1);
    const std::unique_ptr<CardinalityEstimator> estimator =
        MakeEstimator(name, f.catalog, opts).value();
    QFCARD_CHECK_OK(estimator->Train(f.queries, f.cards, 0.1, 5));
    std::vector<double> serial;
    for (const query::Query& q : f.queries) {
      serial.push_back(estimator->EstimateCard(q).value());
    }
    for (const int threads : {1, 4}) {
      common::SetGlobalThreads(threads);
      const std::vector<double> batch =
          estimator->EstimateBatch(f.queries).value();
      EXPECT_EQ(serial, batch) << name << " at " << threads << " threads";
    }
  }
}

// MSCN's per-attribute mode handles the mixed workload; parity across
// thread counts on one trained model.
TEST_F(BatchApiTest, MscnEstimateBatchThreadParity) {
  const Fixture& f = GetFixture();
  common::SetGlobalThreads(1);
  const std::unique_ptr<CardinalityEstimator> estimator =
      MakeEstimator("mscn+conj", f.catalog, FastOptions()).value();
  QFCARD_CHECK_OK(estimator->Train(f.queries, f.cards, 0.1, 5));
  std::vector<double> serial;
  for (const query::Query& q : f.queries) {
    serial.push_back(estimator->EstimateCard(q).value());
  }
  const std::vector<double> batch1 = estimator->EstimateBatch(f.queries).value();
  common::SetGlobalThreads(4);
  const std::vector<double> batch4 = estimator->EstimateBatch(f.queries).value();
  EXPECT_EQ(serial, batch1);
  EXPECT_EQ(batch1, batch4);
}

// Sampling draws fresh tickets per estimate, so parity needs fresh
// same-seed instances: a serial EstimateCard loop and an EstimateBatch over
// the same queries consume the same tickets in the same slots.
TEST_F(BatchApiTest, SamplingBatchMatchesSerialLoopViaTickets) {
  const Fixture& f = GetFixture();
  EstimatorOptions opts;
  opts.sampling_fraction = 0.05;
  opts.sampling_seed = 99;

  common::SetGlobalThreads(1);
  const std::unique_ptr<CardinalityEstimator> serial_est =
      MakeEstimator("sampling", f.catalog, opts).value();
  std::vector<double> serial;
  for (const query::Query& q : f.queries) {
    serial.push_back(serial_est->EstimateCard(q).value());
  }
  for (const int threads : {1, 4}) {
    common::SetGlobalThreads(threads);
    const std::unique_ptr<CardinalityEstimator> batch_est =
        MakeEstimator("sampling", f.catalog, opts).value();
    const std::vector<double> batch = batch_est->EstimateBatch(f.queries).value();
    EXPECT_EQ(serial, batch) << threads << " threads";
  }
}

TEST_F(BatchApiTest, LabelingIdenticalAcrossThreadCounts) {
  const Fixture& f = GetFixture();
  common::Rng rng(123);
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(
          *f.table, 200, workload::ConjunctiveWorkloadOptions(4), rng);
  common::SetGlobalThreads(1);
  const std::vector<workload::LabeledQuery> serial =
      workload::LabelOnTable(*f.table, queries, true).value();
  common::SetGlobalThreads(4);
  const std::vector<workload::LabeledQuery> parallel =
      workload::LabelOnTable(*f.table, queries, true).value();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].card, parallel[i].card) << i;
  }
}

TEST_F(BatchApiTest, RegistryConstructsEveryRegisteredName) {
  const Fixture& f = GetFixture();
  for (const std::string& name : RegisteredEstimators()) {
    const auto est_or = MakeEstimator(name, f.catalog, FastOptions());
    ASSERT_TRUE(est_or.ok()) << name << ": " << est_or.status().ToString();
    EXPECT_NE(est_or.value(), nullptr) << name;
  }
}

TEST_F(BatchApiTest, RegistryNormalizesCaseAndAliases) {
  const Fixture& f = GetFixture();
  EXPECT_TRUE(MakeEstimator("Postgres", f.catalog).ok());
  EXPECT_TRUE(MakeEstimator("GB+Conj", f.catalog, FastOptions()).ok());
  EXPECT_TRUE(MakeEstimator("gb+comp", f.catalog, FastOptions()).ok());
}

TEST_F(BatchApiTest, RegistryRejectsUnknownNames) {
  const Fixture& f = GetFixture();
  EXPECT_FALSE(MakeEstimator("nope", f.catalog).ok());
  EXPECT_FALSE(MakeEstimator("gb+nope", f.catalog).ok());
  EXPECT_FALSE(MakeEstimator("nope+conj", f.catalog).ok());
  EXPECT_FALSE(MakeEstimator("", f.catalog).ok());
}

}  // namespace
}  // namespace qfcard::est
