#include <cmath>
#include <set>

#include "common/env.h"
#include "common/random.h"
#include "common/status.h"
#include "common/str_util.h"
#include "gtest/gtest.h"

namespace qfcard::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> HalveIfEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  QFCARD_ASSIGN_OR_RETURN(const int half, HalveIfEven(x));
  *out = half;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(StatusDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(QFCARD_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(15);
  int64_t ones = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Zipf(10, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
    if (v == 1) ++ones;
  }
  // With s=1.2 the head value dominates.
  EXPECT_GT(ones, 5000 / 4);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(16);
  int64_t ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(10, 0.0) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.1, 0.02);
}

TEST(RngTest, ZipfTableSwitchesBetweenConfigs) {
  // The inverse-CDF table is cached per (n, s); alternating configurations
  // must still produce in-range draws.
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const int64_t a = rng.Zipf(5, 1.0);
    ASSERT_GE(a, 1);
    ASSERT_LE(a, 5);
    const int64_t b = rng.Zipf(50, 0.5);
    ASSERT_GE(b, 1);
    ASSERT_LE(b, 50);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  const std::set<int> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(EnvTest, ScalePickDefault) {
  // QFCARD_SCALE is unset in the test environment.
  if (std::getenv("QFCARD_SCALE") == nullptr) {
    EXPECT_EQ(ScalePick(1, 2, 3), 2);
  }
}

TEST(EnvTest, GetEnvIntFallsBack) {
  EXPECT_EQ(GetEnvInt("QFCARD_NONEXISTENT_VAR_12345", 77), 77);
}

TEST(StrUtilTest, Split) {
  const std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrUtilTest, SplitEmpty) {
  const std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("  "), "");
}

TEST(StrUtilTest, ToLowerAndEqualsIgnoreCase) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "wher"));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace qfcard::common
