#include "featurize/conjunction.h"

#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/executor.h"
#include "test_util.h"

namespace qfcard::featurize {
namespace {

using query::CmpOp;
using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::SingleTableQuery;

FeatureSchema PaperSchema() {
  std::vector<AttributeInfo> attrs(3);
  attrs[0] = AttributeInfo{"A", -9, 50, true, 60};
  attrs[1] = AttributeInfo{"B", 0, 115, true, 116};
  attrs[2] = AttributeInfo{"C", 1, 2, true, 2};
  return FeatureSchema(std::move(attrs));
}

ConjunctionOptions PaperOptions(bool attr_sel) {
  ConjunctionOptions opts;
  opts.max_partitions = 12;
  opts.append_attr_selectivity = attr_sel;
  return opts;
}

TEST(ConjunctionEncodingTest, LayoutAndDims) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  // n_A = 12, n_B = 12, n_C = min(12, 2) = 2.
  EXPECT_EQ(enc.AttrEntries(0), 12);
  EXPECT_EQ(enc.AttrEntries(1), 12);
  EXPECT_EQ(enc.AttrEntries(2), 2);
  EXPECT_EQ(enc.dim(), 26);
  EXPECT_EQ(enc.AttrOffset(1), 12);
  EXPECT_EQ(enc.AttrOffset(2), 24);
}

TEST(ConjunctionEncodingTest, DimsWithSelectivityAppendix) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(true));
  EXPECT_EQ(enc.dim(), 29);  // one extra entry per attribute
  EXPECT_EQ(enc.AttrOffset(1), 13);
}

// The worked example of Section 3.2: n = 12 and
// A < 7 AND B >= 30 AND B <= 100 AND B <> 66 encodes to
//   A: 1 1 1 1/2 0 0 0 0 0 0 0 0
//   B: 0 0 0 1/2 1 1 1/2 1 1 1 1/2 0
//   C: 1 1
TEST(ConjunctionEncodingTest, PaperWorkedExample) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kLt, 7);
  AddCompound(q, 1,
              {{{CmpOp::kGe, 30}, {CmpOp::kLe, 100}, {CmpOp::kNe, 66}}});
  const std::vector<float> v = enc.Featurize(q).value();
  const std::vector<float> expected = {
      1, 1, 1, 0.5f, 0, 0, 0, 0, 0, 0, 0, 0,          // A < 7
      0, 0, 0, 0.5f, 1, 1, 0.5f, 1, 1, 1, 0.5f, 0,    // 30<=B<=100, B<>66
      1, 1,                                            // C: no predicate
  };
  ASSERT_EQ(v.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(v[i], expected[i]) << "entry " << i;
  }
}

TEST(ConjunctionEncodingTest, SelectivityAppendixValues) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(true));
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kLt, 7);
  AddCompound(q, 1,
              {{{CmpOp::kGe, 30}, {CmpOp::kLe, 100}, {CmpOp::kNe, 66}}});
  const std::vector<float> v = enc.Featurize(q).value();
  // A < 7 integral: qualifying domain [-9, 6] = 16 values of 60.
  EXPECT_NEAR(v[static_cast<size_t>(enc.AttrOffset(0) + 12)], 16.0 / 60.0,
              1e-6);
  // B in [30, 100] minus one exclusion: 70 of 116 values.
  EXPECT_NEAR(v[static_cast<size_t>(enc.AttrOffset(1) + 12)], 70.0 / 116.0,
              1e-6);
  // C unconstrained -> 1.
  EXPECT_FLOAT_EQ(v[static_cast<size_t>(enc.AttrOffset(2) + 2)], 1.0f);
}

TEST(ConjunctionEncodingTest, NoPredicatesIsAllOnes) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  const query::Query q = SingleTableQuery("t");
  const std::vector<float> v = enc.Featurize(q).value();
  for (const float x : v) EXPECT_FLOAT_EQ(x, 1.0f);
}

TEST(ConjunctionEncodingTest, EqualityKeepsOnlyOnePartition) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kEq, 7);  // partition index 3
  const std::vector<float> v = enc.Featurize(q).value();
  for (int i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], i == 3 ? 0.5f : 0.0f);
  }
}

TEST(ConjunctionEncodingTest, SmallDomainUsesExactBinaryEntries) {
  // C has domain {1, 2} with one entry per value: exact 0/1 mode.
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 2, CmpOp::kEq, 2);
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_FLOAT_EQ(v[static_cast<size_t>(enc.AttrOffset(2))], 0.0f);
  EXPECT_FLOAT_EQ(v[static_cast<size_t>(enc.AttrOffset(2) + 1)], 1.0f);

  query::Query q2 = SingleTableQuery("t");
  AddPredicate(q2, 2, CmpOp::kNe, 1);
  const std::vector<float> v2 = enc.Featurize(q2).value();
  EXPECT_FLOAT_EQ(v2[static_cast<size_t>(enc.AttrOffset(2))], 0.0f);
  EXPECT_FLOAT_EQ(v2[static_cast<size_t>(enc.AttrOffset(2) + 1)], 1.0f);
}

TEST(ConjunctionEncodingTest, ExactModeStrictInequalities) {
  std::vector<AttributeInfo> attrs(1);
  attrs[0] = AttributeInfo{"x", 0, 7, true, 8};
  const ConjunctionEncoding enc(FeatureSchema(std::move(attrs)),
                                PaperOptions(false));
  ASSERT_EQ(enc.AttrEntries(0), 8);
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0, {{{CmpOp::kGt, 2}, {CmpOp::kLt, 6}}});
  const std::vector<float> v = enc.Featurize(q).value();
  // Qualifying values {3, 4, 5}.
  const std::vector<float> expected = {0, 0, 0, 1, 1, 1, 0, 0};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(v[i], expected[i]) << "entry " << i;
  }
}

TEST(ConjunctionEncodingTest, MorePredicatesOnlyDecreaseEntries) {
  // Monotonicity: adding a conjunct can only decrease entries
  // (Algorithm 1 sets entries to 0 or 1/2, never raises them).
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  common::Rng rng(31);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<CmpOp, double>> preds;
    query::Query q = SingleTableQuery("t");
    const int n_preds = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < n_preds; ++i) {
      preds.push_back({static_cast<CmpOp>(rng.UniformInt(0, 5)),
                       static_cast<double>(rng.UniformInt(-9, 50))});
    }
    AddCompound(q, 0, {preds});
    const std::vector<float> base = enc.Featurize(q).value();
    query::Query q2 = SingleTableQuery("t");
    preds.push_back({static_cast<CmpOp>(rng.UniformInt(0, 5)),
                     static_cast<double>(rng.UniformInt(-9, 50))});
    AddCompound(q2, 0, {preds});
    const std::vector<float> more = enc.Featurize(q2).value();
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_LE(more[i], base[i] + 1e-6) << "entry " << i;
    }
  }
}

TEST(ConjunctionEncodingTest, RejectsDisjunctions) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0, {{{CmpOp::kLe, 0}}, {{CmpOp::kGe, 40}}});
  EXPECT_EQ(enc.Featurize(q).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ConjunctionEncodingTest, HalfValueAblationRoundsUp) {
  ConjunctionOptions opts = PaperOptions(false);
  opts.use_half_values = false;
  const ConjunctionEncoding enc(PaperSchema(), opts);
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kLt, 7);
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_FLOAT_EQ(v[3], 1.0f);  // partially qualifying partition becomes 1
  EXPECT_FLOAT_EQ(v[4], 0.0f);
}

TEST(ConjunctionEncodingTest, OutOfDomainPredicates) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  // A = 1000 (outside [-9, 50]): nothing qualifies.
  {
    query::Query q = SingleTableQuery("t");
    AddPredicate(q, 0, CmpOp::kEq, 1000);
    const std::vector<float> v = enc.Featurize(q).value();
    for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 0.0f);
  }
  // A >= 1000: nothing qualifies.
  {
    query::Query q = SingleTableQuery("t");
    AddPredicate(q, 0, CmpOp::kGe, 1000);
    const std::vector<float> v = enc.Featurize(q).value();
    for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 0.0f);
  }
  // A <= -1000: nothing qualifies.
  {
    query::Query q = SingleTableQuery("t");
    AddPredicate(q, 0, CmpOp::kLe, -1000);
    const std::vector<float> v = enc.Featurize(q).value();
    for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 0.0f);
  }
  // A >= -1000 (below min): everything qualifies.
  {
    query::Query q = SingleTableQuery("t");
    AddPredicate(q, 0, CmpOp::kGe, -1000);
    const std::vector<float> v = enc.Featurize(q).value();
    for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 1.0f);
  }
  // A <= 1000 (above max): everything qualifies.
  {
    query::Query q = SingleTableQuery("t");
    AddPredicate(q, 0, CmpOp::kLe, 1000);
    const std::vector<float> v = enc.Featurize(q).value();
    for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 1.0f);
  }
  // A <> 1000 (absent value): everything still qualifies.
  {
    query::Query q = SingleTableQuery("t");
    AddPredicate(q, 0, CmpOp::kNe, 1000);
    const std::vector<float> v = enc.Featurize(q).value();
    for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 1.0f);
  }
}

TEST(ConjunctionEncodingTest, ContradictoryClauseIsAllZero) {
  const ConjunctionEncoding enc(PaperSchema(), PaperOptions(false));
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0, {{{CmpOp::kGe, 40}, {CmpOp::kLe, 0}}});
  const std::vector<float> v = enc.Featurize(q).value();
  for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 0.0f);
}

TEST(ConjunctionEncodingTest, PerAttributePartitionBudgets) {
  ConjunctionOptions opts = PaperOptions(false);
  opts.per_attribute_partitions = {24, 6, 12};  // overrides max_partitions
  const ConjunctionEncoding enc(PaperSchema(), opts);
  EXPECT_EQ(enc.AttrEntries(0), 24);
  EXPECT_EQ(enc.AttrEntries(1), 6);
  EXPECT_EQ(enc.AttrEntries(2), 2);  // still capped by C's domain {1, 2}
  EXPECT_EQ(enc.dim(), 32);

  // Indexing must honor the per-attribute budget: with 24 partitions over
  // [-9, 50], value 7 lands at floor(16/60*24) = 6, and the encoding of
  // A < 7 must flip exactly there.
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kLt, 7);
  const std::vector<float> v = enc.Featurize(q).value();
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 1.0f);
  EXPECT_FLOAT_EQ(v[6], 0.5f);
  for (int i = 7; i < 24; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 0.0f);
}

TEST(SkewAwarePartitionsTest, BoostsSkewedColumns) {
  storage::Table t("t");
  std::vector<double> skewed;
  std::vector<double> uniform;
  common::Rng rng(91);
  for (int i = 0; i < 1000; ++i) {
    skewed.push_back(i < 600 ? 7.0 : static_cast<double>(rng.UniformInt(0, 99)));
    uniform.push_back(static_cast<double>(rng.UniformInt(0, 99)));
  }
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("skewed", skewed)));
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("uniform", uniform)));
  const std::vector<int> budgets = SkewAwarePartitions(t, 32, 2, 0.2);
  ASSERT_EQ(budgets.size(), 2u);
  EXPECT_EQ(budgets[0], 64);  // boosted
  EXPECT_EQ(budgets[1], 32);
}

// ---------------------------------------------------------------------------
// Lemma 3.2: with one partition per distinct integral value, the encoding is
// lossless — the query result can be reconstructed exactly from the vector.
// ---------------------------------------------------------------------------

class LosslessnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LosslessnessTest, FullResolutionVectorReconstructsCount) {
  common::Rng rng(GetParam());
  // Table with 3 attributes over domain [0, 19].
  storage::Table t("t");
  const int64_t rows = 400;
  for (int c = 0; c < 3; ++c) {
    std::vector<double> values;
    for (int64_t r = 0; r < rows; ++r) {
      values.push_back(static_cast<double>(rng.UniformInt(0, 19)));
    }
    QFCARD_CHECK_OK(
        t.AddColumn(testutil::IntColumn("c" + std::to_string(c), values)));
  }
  const FeatureSchema schema = FeatureSchema::FromTable(t);
  ConjunctionOptions opts;
  opts.max_partitions = 32;  // >= domain size 20 -> exact mode
  opts.append_attr_selectivity = false;
  const ConjunctionEncoding enc(schema, opts);

  for (int iter = 0; iter < 20; ++iter) {
    query::Query q = SingleTableQuery("t");
    for (int a = 0; a < 3; ++a) {
      if (rng.Bernoulli(0.3)) continue;
      std::vector<std::pair<CmpOp, double>> preds;
      const int n_preds = static_cast<int>(rng.UniformInt(1, 3));
      for (int p = 0; p < n_preds; ++p) {
        preds.push_back({static_cast<CmpOp>(rng.UniformInt(0, 5)),
                         static_cast<double>(rng.UniformInt(0, 19))});
      }
      AddCompound(q, a, {preds});
    }
    const std::vector<float> v = enc.Featurize(q).value();
    // Reconstruct: value x of attribute a qualifies iff its entry is 1.
    int64_t reconstructed = 0;
    for (int64_t r = 0; r < rows; ++r) {
      bool ok = true;
      for (int a = 0; a < 3 && ok; ++a) {
        const int idx = EquiWidthPartitioner::Get().IndexOf(
            schema.attr(a), opts.max_partitions, t.column(a).Get(r));
        ok = v[static_cast<size_t>(enc.AttrOffset(a) + idx)] == 1.0f;
      }
      if (ok) ++reconstructed;
    }
    const int64_t truth = query::Executor::Count(t, q).value();
    EXPECT_EQ(reconstructed, truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessnessTest,
                         ::testing::Values(101u, 102u, 103u, 104u));

// Convergence: once n exceeds the (integral) domain size, the feature
// vector's per-attribute content stops changing (Lemma 3.2's "does not
// change anymore").
TEST(ConvergenceTest, VectorStabilizesBeyondDomainResolution) {
  std::vector<AttributeInfo> attrs(1);
  attrs[0] = AttributeInfo{"x", 0, 15, true, 16};
  const FeatureSchema schema{std::move(attrs)};
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0, {{{CmpOp::kGe, 3}, {CmpOp::kLe, 11}, {CmpOp::kNe, 7}}});
  ConjunctionOptions o16;
  o16.max_partitions = 16;
  o16.append_attr_selectivity = false;
  ConjunctionOptions o64 = o16;
  o64.max_partitions = 64;
  const ConjunctionEncoding enc16(schema, o16);
  const ConjunctionEncoding enc64(schema, o64);
  // n_A caps at the domain size (16), so both produce identical vectors.
  EXPECT_EQ(enc16.dim(), enc64.dim());
  EXPECT_EQ(enc16.Featurize(q).value(), enc64.Featurize(q).value());
}

}  // namespace
}  // namespace qfcard::featurize
