#include "featurize/disjunction.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/executor.h"
#include "test_util.h"

namespace qfcard::featurize {
namespace {

using query::CmpOp;
using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::SingleTableQuery;

FeatureSchema PaperSchema() {
  std::vector<AttributeInfo> attrs(3);
  attrs[0] = AttributeInfo{"A", -9, 50, true, 60};
  attrs[1] = AttributeInfo{"B", 0, 115, true, 116};
  attrs[2] = AttributeInfo{"C", 1, 2, true, 2};
  return FeatureSchema(std::move(attrs));
}

ConjunctionOptions PaperOptions() {
  ConjunctionOptions opts;
  opts.max_partitions = 12;
  opts.append_attr_selectivity = false;
  return opts;
}

// The worked example of Section 3.3:
// (A > -2 AND A <= 30 AND A != 7 OR A >= 42) AND B >= 39.5 encodes to
//   A: 0 1/2 1 1/2 1 1 1 1/2 0 0 1/2 1
//   B: 0 0 0 0 1/2 1 1 1 1 1 1 1
//   C: 1 1
TEST(DisjunctionEncodingTest, PaperWorkedExample) {
  const DisjunctionEncoding enc(PaperSchema(), PaperOptions());
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0,
              {{{CmpOp::kGt, -2}, {CmpOp::kLe, 30}, {CmpOp::kNe, 7}},
               {{CmpOp::kGe, 42}}});
  AddPredicate(q, 1, CmpOp::kGe, 39.5);
  const std::vector<float> v = enc.Featurize(q).value();
  const std::vector<float> expected = {
      0, 0.5f, 1, 0.5f, 1, 1, 1, 0.5f, 0, 0, 0.5f, 1,  // compound on A
      0, 0,    0, 0,    0.5f, 1, 1, 1, 1, 1, 1,    1,  // B >= 39.5
      1, 1,                                            // C: no predicate
  };
  ASSERT_EQ(v.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(v[i], expected[i]) << "entry " << i;
  }
}

TEST(DisjunctionEncodingTest, PerClauseVectorsOfPaperExample) {
  // The example's intermediate vectors, checked via single-clause queries.
  const DisjunctionEncoding enc(PaperSchema(), PaperOptions());
  query::Query first = SingleTableQuery("t");
  AddCompound(first, 0, {{{CmpOp::kGt, -2}, {CmpOp::kLe, 30}, {CmpOp::kNe, 7}}});
  const std::vector<float> v1 = enc.Featurize(first).value();
  const std::vector<float> expected1 = {0, 0.5f, 1, 0.5f, 1, 1, 1, 0.5f,
                                        0, 0, 0, 0};
  for (size_t i = 0; i < expected1.size(); ++i) {
    EXPECT_FLOAT_EQ(v1[i], expected1[i]) << "entry " << i;
  }
  query::Query second = SingleTableQuery("t");
  AddPredicate(second, 0, CmpOp::kGe, 42);
  const std::vector<float> v2 = enc.Featurize(second).value();
  const std::vector<float> expected2 = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0.5f, 1};
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_FLOAT_EQ(v2[i], expected2[i]) << "entry " << i;
  }
}

TEST(DisjunctionEncodingTest, MergeIsEntrywiseMax) {
  const DisjunctionEncoding enc(PaperSchema(), PaperOptions());
  query::Query a = SingleTableQuery("t");
  AddCompound(a, 0, {{{CmpOp::kLe, 5}}});
  query::Query b = SingleTableQuery("t");
  AddCompound(b, 0, {{{CmpOp::kGe, 30}}});
  query::Query both = SingleTableQuery("t");
  AddCompound(both, 0, {{{CmpOp::kLe, 5}}, {{CmpOp::kGe, 30}}});
  const std::vector<float> va = enc.Featurize(a).value();
  const std::vector<float> vb = enc.Featurize(b).value();
  const std::vector<float> vboth = enc.Featurize(both).value();
  for (int i = 0; i < enc.AttrEntries(0); ++i) {
    EXPECT_FLOAT_EQ(vboth[static_cast<size_t>(i)],
                    std::max(va[static_cast<size_t>(i)],
                             vb[static_cast<size_t>(i)]));
  }
}

TEST(DisjunctionEncodingTest, EqualsConjunctionEncodingOnConjunctiveQueries) {
  // The paper relies on this for JOB-light: without disjunctions the two
  // QFTs produce identical feature vectors.
  ConjunctionOptions opts;
  opts.max_partitions = 16;
  const ConjunctionEncoding conj(PaperSchema(), opts);
  const DisjunctionEncoding comp(PaperSchema(), opts);
  ASSERT_EQ(conj.dim(), comp.dim());
  common::Rng rng(55);
  for (int iter = 0; iter < 30; ++iter) {
    query::Query q = SingleTableQuery("t");
    for (int a = 0; a < 3; ++a) {
      if (rng.Bernoulli(0.4)) continue;
      std::vector<std::pair<CmpOp, double>> preds;
      const int n = static_cast<int>(rng.UniformInt(1, 3));
      for (int p = 0; p < n; ++p) {
        preds.push_back({static_cast<CmpOp>(rng.UniformInt(0, 5)),
                         static_cast<double>(rng.UniformInt(-9, 50))});
      }
      AddCompound(q, a, {preds});
    }
    EXPECT_EQ(conj.Featurize(q).value(), comp.Featurize(q).value());
  }
}

TEST(DisjunctionEncodingTest, MoreDisjunctsOnlyIncreaseEntries) {
  // Additional disjunctions make queries only less selective: entries are
  // monotonically non-decreasing in the number of clauses.
  const DisjunctionEncoding enc(PaperSchema(), PaperOptions());
  common::Rng rng(77);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::vector<std::pair<CmpOp, double>>> clauses;
    clauses.push_back({{CmpOp::kGe, static_cast<double>(rng.UniformInt(-9, 50))},
                       {CmpOp::kLe, static_cast<double>(rng.UniformInt(-9, 50))}});
    query::Query q1 = SingleTableQuery("t");
    AddCompound(q1, 0, clauses);
    const std::vector<float> v1 = enc.Featurize(q1).value();
    clauses.push_back({{CmpOp::kGe, static_cast<double>(rng.UniformInt(-9, 50))}});
    query::Query q2 = SingleTableQuery("t");
    AddCompound(q2, 0, clauses);
    const std::vector<float> v2 = enc.Featurize(q2).value();
    for (size_t i = 0; i < v1.size(); ++i) {
      EXPECT_GE(v2[i], v1[i] - 1e-6) << "entry " << i;
    }
  }
}

TEST(DisjunctionEncodingTest, SelectivityAppendixTakesMaxOverClauses) {
  ConjunctionOptions opts;
  opts.max_partitions = 12;
  opts.append_attr_selectivity = true;
  const DisjunctionEncoding enc(PaperSchema(), opts);
  query::Query q = SingleTableQuery("t");
  // Clause 1: A in [-9, 2] -> 12/60; clause 2: A in [21, 50] -> 30/60.
  AddCompound(q, 0, {{{CmpOp::kLe, 2}}, {{CmpOp::kGe, 21}}});
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_NEAR(v[static_cast<size_t>(enc.AttrOffset(0) + enc.AttrEntries(0))],
              30.0 / 60.0, 1e-6);
}

// Lossless reconstruction for mixed queries at full resolution (the
// Section 3.3 claim that Limited Disjunction Encoding converges to a
// lossless featurization of mixed queries).
class MixedLosslessnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixedLosslessnessTest, FullResolutionReconstructsCount) {
  common::Rng rng(GetParam());
  storage::Table t("t");
  const int64_t rows = 300;
  for (int c = 0; c < 2; ++c) {
    std::vector<double> values;
    for (int64_t r = 0; r < rows; ++r) {
      values.push_back(static_cast<double>(rng.UniformInt(0, 15)));
    }
    QFCARD_CHECK_OK(
        t.AddColumn(testutil::IntColumn("c" + std::to_string(c), values)));
  }
  const FeatureSchema schema = FeatureSchema::FromTable(t);
  ConjunctionOptions opts;
  opts.max_partitions = 16;
  opts.append_attr_selectivity = false;
  const DisjunctionEncoding enc(schema, opts);

  for (int iter = 0; iter < 20; ++iter) {
    query::Query q = SingleTableQuery("t");
    for (int a = 0; a < 2; ++a) {
      std::vector<std::vector<std::pair<CmpOp, double>>> clauses;
      const int n_clauses = static_cast<int>(rng.UniformInt(1, 3));
      for (int cl = 0; cl < n_clauses; ++cl) {
        std::vector<std::pair<CmpOp, double>> preds;
        const int n = static_cast<int>(rng.UniformInt(1, 3));
        for (int p = 0; p < n; ++p) {
          preds.push_back({static_cast<CmpOp>(rng.UniformInt(0, 5)),
                           static_cast<double>(rng.UniformInt(0, 15))});
        }
        clauses.push_back(std::move(preds));
      }
      AddCompound(q, a, clauses);
    }
    const std::vector<float> v = enc.Featurize(q).value();
    int64_t reconstructed = 0;
    for (int64_t r = 0; r < rows; ++r) {
      bool ok = true;
      for (int a = 0; a < 2 && ok; ++a) {
        const int idx = EquiWidthPartitioner::Get().IndexOf(
            schema.attr(a), opts.max_partitions, t.column(a).Get(r));
        ok = v[static_cast<size_t>(enc.AttrOffset(a) + idx)] == 1.0f;
      }
      if (ok) ++reconstructed;
    }
    EXPECT_EQ(reconstructed, query::Executor::Count(t, q).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedLosslessnessTest,
                         ::testing::Values(201u, 202u, 203u));

}  // namespace
}  // namespace qfcard::featurize
