#include "estimators/postgres.h"

#include <cmath>

#include "common/random.h"
#include "estimators/iep.h"
#include "estimators/ml_estimator.h"
#include "estimators/sampling.h"
#include "estimators/true_card.h"
#include "featurize/conjunction.h"
#include "featurize/range.h"
#include "gtest/gtest.h"
#include "ml/gbm.h"
#include "ml/metrics.h"
#include "query/executor.h"
#include "test_util.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::est {
namespace {

using query::CmpOp;
using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::IntColumn;
using testutil::SingleTableQuery;

// Two independent uniform columns: independence + uniformity hold, so the
// Postgres-style estimator should be nearly exact.
storage::Catalog MakeUniformCatalog(int64_t rows, uint64_t seed) {
  common::Rng rng(seed);
  storage::Catalog cat;
  storage::Table t("uni");
  std::vector<double> a;
  std::vector<double> b;
  for (int64_t r = 0; r < rows; ++r) {
    a.push_back(static_cast<double>(rng.UniformInt(0, 99)));
    b.push_back(static_cast<double>(rng.UniformInt(0, 99)));
  }
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("a", a)));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("b", b)));
  QFCARD_CHECK_OK(cat.AddTable(std::move(t)));
  return cat;
}

TEST(ColumnSynopsisTest, FractionLeApproximatesCdf) {
  const storage::Catalog cat = MakeUniformCatalog(20000, 3);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  const ColumnSynopsis& s = est_or.value().synopsis(0, 0);
  EXPECT_NEAR(s.FractionLe(49), 0.5, 0.03);
  EXPECT_NEAR(s.FractionLe(24), 0.25, 0.03);
  EXPECT_DOUBLE_EQ(s.FractionLe(-1), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionLe(1000), 1.0);
}

TEST(ColumnSynopsisTest, FractionEqUsesMcvAndNdv) {
  storage::Catalog cat;
  storage::Table t("skew");
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(7);
  for (int i = 0; i < 100; ++i) values.push_back(i % 50);
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("x", values)));
  QFCARD_CHECK_OK(cat.AddTable(std::move(t)));
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  const ColumnSynopsis& s = est_or.value().synopsis(0, 0);
  // The heavy hitter is in the MCV list with its exact frequency.
  EXPECT_NEAR(s.FractionEq(7), 0.9 + 2.0 / 1000.0, 0.01);
  EXPECT_DOUBLE_EQ(s.FractionEq(-5), 0.0);
}

TEST(PostgresEstimatorTest, NearExactOnIndependentUniformData) {
  const storage::Catalog cat = MakeUniformCatalog(20000, 5);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  const storage::Table& t = *cat.GetTable("uni").value();

  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kGe, 20}, {CmpOp::kLe, 59}}});
  AddCompound(q, 1, {{{CmpOp::kLe, 49}}});
  const double est = est_or.value().EstimateCard(q).value();
  const double truth =
      static_cast<double>(query::Executor::Count(t, q).value());
  EXPECT_LT(ml::QError(truth, est), 1.2);
}

TEST(PostgresEstimatorTest, OrSelectivityCombination) {
  const storage::Catalog cat = MakeUniformCatalog(20000, 7);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  const storage::Table& t = *cat.GetTable("uni").value();
  query::Query q = SingleTableQuery("uni");
  // a <= 9 OR a >= 90: two disjoint ~10% slices -> ~19% via s1+s2-s1*s2.
  AddCompound(q, 0, {{{CmpOp::kLe, 9}}, {{CmpOp::kGe, 90}}});
  const double est = est_or.value().EstimateCard(q).value();
  const double truth =
      static_cast<double>(query::Executor::Count(t, q).value());
  EXPECT_LT(ml::QError(truth, est), 1.25);
}

TEST(PostgresEstimatorTest, IndependenceAssumptionFailsOnCorrelation) {
  // Perfectly correlated columns: b == a. True count of (a<=49 AND b<=49)
  // is 50%, the independence estimate is 25%.
  common::Rng rng(9);
  storage::Catalog cat;
  storage::Table t("corr");
  std::vector<double> a;
  for (int64_t r = 0; r < 10000; ++r) {
    a.push_back(static_cast<double>(rng.UniformInt(0, 99)));
  }
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("a", a)));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("b", a)));
  QFCARD_CHECK_OK(cat.AddTable(std::move(t)));
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  query::Query q = SingleTableQuery("corr");
  AddCompound(q, 0, {{{CmpOp::kLe, 49}}});
  AddCompound(q, 1, {{{CmpOp::kLe, 49}}});
  const double est = est_or.value().EstimateCard(q).value();
  EXPECT_NEAR(est / 10000.0, 0.25, 0.03);  // the estimator multiplies
}

TEST(PostgresEstimatorTest, JoinUsesSystemRFormula) {
  // fact (6 rows) references dim (3 distinct keys): |join| = 6*3/max(3,3).
  storage::Catalog cat;
  storage::Table dim("dim");
  QFCARD_CHECK_OK(dim.AddColumn(IntColumn("id", {0, 1, 2})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(dim)));
  storage::Table fact("fact");
  QFCARD_CHECK_OK(fact.AddColumn(IntColumn("dim_id", {0, 0, 1, 1, 2, 2})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(fact)));
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  query::Query q;
  q.tables.push_back(query::TableRef{"fact", "fact"});
  q.tables.push_back(query::TableRef{"dim", "dim"});
  q.joins.push_back(
      query::JoinPredicate{query::ColumnRef{0, 0}, query::ColumnRef{1, 0}});
  EXPECT_NEAR(est_or.value().EstimateCard(q).value(), 6.0, 1e-9);
}

TEST(PostgresEstimatorTest, NotEqualReducesRangeSelectivity) {
  const storage::Catalog cat = MakeUniformCatalog(20000, 11);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  query::Query with_ne = SingleTableQuery("uni");
  AddCompound(with_ne, 0,
              {{{CmpOp::kGe, 10}, {CmpOp::kLe, 19}, {CmpOp::kNe, 15}}});
  query::Query without_ne = SingleTableQuery("uni");
  AddCompound(without_ne, 0, {{{CmpOp::kGe, 10}, {CmpOp::kLe, 19}}});
  EXPECT_LT(est_or.value().EstimateCard(with_ne).value(),
            est_or.value().EstimateCard(without_ne).value());
}

TEST(PostgresEstimatorTest, GroupByBoundedByNdvProduct) {
  const storage::Catalog cat = MakeUniformCatalog(20000, 12);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  ASSERT_TRUE(est_or.ok());
  // Grouping by column a (100 distinct values) with no predicates: the
  // estimate must cap at ~100 groups rather than 20000 rows.
  query::Query q = SingleTableQuery("uni");
  q.group_by.push_back(query::ColumnRef{0, 0});
  const double est = est_or.value().EstimateCard(q).value();
  EXPECT_LE(est, 101.0);
  EXPECT_GE(est, 50.0);
}

TEST(PostgresEstimatorTest, RangeSelectivityMonotoneInWidth) {
  const storage::Catalog cat = MakeUniformCatalog(20000, 14);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  double prev = 0.0;
  for (const double hi : {10.0, 30.0, 60.0, 99.0}) {
    query::Query q = SingleTableQuery("uni");
    AddCompound(q, 0, {{{CmpOp::kGe, 0}, {CmpOp::kLe, hi}}});
    const double est = est_or.value().EstimateCard(q).value();
    EXPECT_GE(est, prev);
    prev = est;
  }
}

TEST(PostgresEstimatorTest, SizeBytesIsSmall) {
  const storage::Catalog cat = MakeUniformCatalog(5000, 13);
  const auto est_or = PostgresStyleEstimator::Build(&cat);
  EXPECT_GT(est_or.value().SizeBytes(), 0u);
  EXPECT_LT(est_or.value().SizeBytes(), 100000u);
}

TEST(TrueCardEstimatorTest, MatchesExecutor) {
  const storage::Catalog cat = MakeUniformCatalog(2000, 15);
  const TrueCardEstimator oracle(&cat);
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kLe, 30}}});
  const storage::Table& t = *cat.GetTable("uni").value();
  EXPECT_DOUBLE_EQ(
      oracle.EstimateCard(q).value(),
      static_cast<double>(query::Executor::Count(t, q).value()));
}

TEST(SamplingEstimatorTest, ApproximatelyUnbiased) {
  const storage::Catalog cat = MakeUniformCatalog(50000, 17);
  const SamplingEstimator sampler(&cat, 0.02, 19);
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kLe, 49}}});  // ~50% selectivity
  double sum = 0.0;
  const int repeats = 20;
  for (int i = 0; i < repeats; ++i) {
    sum += sampler.EstimateCard(q).value();
  }
  EXPECT_NEAR(sum / repeats / 50000.0, 0.5, 0.05);
}

TEST(SamplingEstimatorTest, SelectivePredicatesHaveHeavyTail) {
  // A predicate matching ~5 rows is often missed entirely by a 0.1% sample
  // (estimate 1), the failure mode Figure 4 shows.
  const storage::Catalog cat = MakeUniformCatalog(5000, 21);
  const SamplingEstimator sampler(&cat, 0.001, 23);
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kEq, 7}}});
  AddCompound(q, 1, {{{CmpOp::kLe, 4}}});
  int misses = 0;
  for (int i = 0; i < 30; ++i) {
    if (sampler.EstimateCard(q).value() <= 1.0) ++misses;
  }
  EXPECT_GT(misses, 15);
}

TEST(SamplingEstimatorTest, JoinsUnimplemented) {
  const storage::Catalog cat = MakeUniformCatalog(100, 25);
  const SamplingEstimator sampler(&cat, 0.1, 27);
  query::Query q = SingleTableQuery("uni");
  q.tables.push_back(query::TableRef{"uni2", "uni2"});
  EXPECT_EQ(sampler.EstimateCard(q).status().code(),
            common::StatusCode::kUnimplemented);
}

TEST(MlEstimatorTest, TrainRejectsLengthMismatch) {
  const storage::Catalog cat = MakeUniformCatalog(100, 71);
  const storage::Table& t = *cat.GetTable("uni").value();
  MlEstimator estimator(
      std::make_unique<featurize::RangeEncoding>(
          featurize::FeatureSchema::FromTable(t)),
      std::make_unique<ml::GradientBoosting>());
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kLe, 50}}});
  EXPECT_EQ(estimator.Train({q}, {1.0, 2.0}, 0.0, 1).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(IepEstimatorTest, ExactInnerGivesExactDisjunctions) {
  // Inclusion-exclusion over the true-cardinality oracle must reproduce the
  // exact count of any mixed query (the IEP identity itself).
  const storage::Catalog cat = MakeUniformCatalog(3000, 51);
  const storage::Table& t = *cat.GetTable("uni").value();
  const TrueCardEstimator oracle(&cat);
  const IepEstimator iep(&oracle, /*max_terms=*/8);
  common::Rng rng(53);
  for (int iter = 0; iter < 15; ++iter) {
    query::Query q = SingleTableQuery("uni");
    for (int a = 0; a < 2; ++a) {
      std::vector<std::vector<std::pair<CmpOp, double>>> clauses;
      const int n_clauses = static_cast<int>(rng.UniformInt(1, 2));
      for (int c = 0; c < n_clauses; ++c) {
        double lo = static_cast<double>(rng.UniformInt(0, 99));
        double hi = static_cast<double>(rng.UniformInt(0, 99));
        if (lo > hi) std::swap(lo, hi);
        clauses.push_back({{CmpOp::kGe, lo}, {CmpOp::kLe, hi}});
      }
      AddCompound(q, a, clauses);
    }
    const double truth = static_cast<double>(
        query::Executor::Count(t, q).value());
    const auto est_or = iep.EstimateCard(q);
    ASSERT_TRUE(est_or.ok()) << est_or.status();
    EXPECT_NEAR(est_or.value(), std::max(truth, 1.0), 1e-6);
  }
}

TEST(IepEstimatorTest, SubqueryCountIsExponential) {
  const storage::Catalog cat = MakeUniformCatalog(500, 55);
  const TrueCardEstimator oracle(&cat);
  const IepEstimator iep(&oracle, /*max_terms=*/8);
  // 2 attributes x 2 clauses each = 4 DNF terms -> 2^4 - 1 = 15 subqueries.
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kLe, 20}}, {{CmpOp::kGe, 80}}});
  AddCompound(q, 1, {{{CmpOp::kLe, 30}}, {{CmpOp::kGe, 70}}});
  ASSERT_TRUE(iep.EstimateCard(q).ok());
  EXPECT_EQ(iep.last_call().dnf_terms, 4);
  EXPECT_EQ(iep.last_call().subqueries, 15);
}

TEST(IepEstimatorTest, RejectsBlowUp) {
  const storage::Catalog cat = MakeUniformCatalog(500, 57);
  const TrueCardEstimator oracle(&cat);
  const IepEstimator iep(&oracle, /*max_terms=*/3);
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kLe, 20}}, {{CmpOp::kGe, 80}}});
  AddCompound(q, 1, {{{CmpOp::kLe, 30}}, {{CmpOp::kGe, 70}}});
  EXPECT_EQ(iep.EstimateCard(q).status().code(),
            common::StatusCode::kOutOfRange);
}

TEST(IepEstimatorTest, ConjunctiveFastPath) {
  const storage::Catalog cat = MakeUniformCatalog(500, 59);
  const TrueCardEstimator oracle(&cat);
  const IepEstimator iep(&oracle, 8);
  query::Query q = SingleTableQuery("uni");
  AddCompound(q, 0, {{{CmpOp::kLe, 50}}});
  ASSERT_TRUE(iep.EstimateCard(q).ok());
  EXPECT_EQ(iep.last_call().subqueries, 1);
}

TEST(MlEstimatorTest, TrainsAndEstimates) {
  const storage::Catalog cat = MakeUniformCatalog(5000, 29);
  const storage::Table& t = *cat.GetTable("uni").value();
  common::Rng rng(31);
  workload::PredicateGenOptions gen;
  gen.max_attrs = 2;
  gen.max_not_equals = 2;
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(t, 800, gen, rng);
  const auto labeled_or = workload::LabelOnTable(t, queries, true);
  ASSERT_TRUE(labeled_or.ok());
  std::vector<query::Query> qs;
  std::vector<double> cards;
  for (const auto& lq : labeled_or.value()) {
    qs.push_back(lq.query);
    cards.push_back(lq.card);
  }
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 16;
  ml::GbmParams gbm;
  gbm.num_trees = 60;
  MlEstimator estimator(
      std::make_unique<featurize::ConjunctionEncoding>(
          featurize::FeatureSchema::FromTable(t), copts),
      std::make_unique<ml::GradientBoosting>(gbm));
  ASSERT_TRUE(estimator.Train(qs, cards, 0.1, 33).ok());
  EXPECT_GT(estimator.SizeBytes(), 0u);
  EXPECT_EQ(estimator.name(), "GB+conjunctive");

  // In-sample estimates should be decent.
  double mean_q = 0.0;
  for (size_t i = 0; i < qs.size(); ++i) {
    mean_q += ml::QError(cards[i], estimator.EstimateCard(qs[i]).value());
  }
  mean_q /= static_cast<double>(qs.size());
  EXPECT_LT(mean_q, 3.0);
}

}  // namespace
}  // namespace qfcard::est
