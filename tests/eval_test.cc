#include "eval/harness.h"

#include <algorithm>
#include <sstream>

#include "eval/report.h"
#include "obs/metrics.h"
#include "eval/summary.h"
#include "featurize/conjunction.h"
#include "gtest/gtest.h"
#include "ml/gbm.h"
#include "test_util.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::eval {
namespace {

TEST(SummaryTest, SummarizeByGroupBuckets) {
  const std::vector<double> errors{1, 2, 3, 10, 20};
  const std::vector<int> groups{1, 1, 2, 2, 2};
  const auto grouped = SummarizeByGroup(errors, groups);
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_DOUBLE_EQ(grouped.at(1).mean, 1.5);
  EXPECT_DOUBLE_EQ(grouped.at(2).mean, 11.0);
  EXPECT_EQ(grouped.at(2).count, 3u);
}

TEST(SummaryTest, SummarizeByGroupEmpty) {
  EXPECT_TRUE(SummarizeByGroup({}, {}).empty());
}

TEST(SummaryTest, BucketizeGroupsMapsToLargestNotAbove) {
  const std::vector<int> buckets{1, 3, 5};
  EXPECT_EQ(BucketizeGroups({1, 2, 3, 4, 5, 9}, buckets),
            (std::vector<int>{1, 1, 3, 3, 5, 5}));
  // Values below the first bucket clamp to it.
  EXPECT_EQ(BucketizeGroups({0}, buckets), (std::vector<int>{1}));
}

TEST(ReportTest, TablePrinterAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Each printed data line ends with the value column.
  EXPECT_NE(text.find("long-name  2"), std::string::npos);
}

TEST(ReportTest, FormatQPrecisionTiers) {
  EXPECT_EQ(FormatQ(1.234), "1.23");
  EXPECT_EQ(FormatQ(123.4), "123.4");
  EXPECT_EQ(FormatQ(1234.8), "1235");
}

TEST(ReportTest, FormatBoxContainsQuantiles) {
  ml::QErrorSummary s;
  s.p01 = 1.0;
  s.p25 = 1.5;
  s.median = 2.0;
  s.p75 = 3.0;
  s.p99 = 10.0;
  s.max = 20.0;
  const std::string box = FormatBox(s);
  EXPECT_NE(box.find("[2.00]"), std::string::npos);
  EXPECT_NE(box.find("max 20.00"), std::string::npos);
}

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest() : table_(testutil::SmallTable()) {
    // Deterministic tiny workload over the small table.
    common::Rng rng(5);
    workload::PredicateGenOptions gen;
    gen.max_attrs = 2;
    gen.max_not_equals = 1;
    const std::vector<query::Query> queries =
        workload::GeneratePredicateWorkload(table_, 120, gen, rng);
    labeled_ = workload::LabelOnTable(table_, queries, true).value();
  }

  storage::Table table_;
  std::vector<workload::LabeledQuery> labeled_;
};

TEST_F(HarnessTest, FeaturizeWorkloadShapes) {
  featurize::ConjunctionOptions opts;
  opts.max_partitions = 8;
  const featurize::ConjunctionEncoding featurizer(
      featurize::FeatureSchema::FromTable(table_), opts);
  const std::vector<workload::LabeledQuery> train(labeled_.begin(),
                                                  labeled_.end() - 20);
  const std::vector<workload::LabeledQuery> test(labeled_.end() - 20,
                                                 labeled_.end());
  const auto data_or = FeaturizeWorkload(featurizer, train, test, 0.2, 7);
  ASSERT_TRUE(data_or.ok()) << data_or.status();
  const FeaturizedData& data = data_or.value();
  EXPECT_EQ(data.test.num_rows(), 20);
  EXPECT_EQ(data.train.num_rows() + data.valid.num_rows(),
            static_cast<int>(train.size()));
  EXPECT_GT(data.valid.num_rows(), 0);
  EXPECT_EQ(data.train.dim(), featurizer.dim());
  EXPECT_EQ(data.test_cards.size(), 20u);
  // Labels are log2 of the cardinalities.
  EXPECT_NEAR(ml::LabelToCard(data.test.y[0]), data.test_cards[0], 1e-3);
}

TEST_F(HarnessTest, RunQftModelProducesConsistentResult) {
  featurize::ConjunctionOptions opts;
  opts.max_partitions = 8;
  const featurize::ConjunctionEncoding featurizer(
      featurize::FeatureSchema::FromTable(table_), opts);
  ml::GbmParams params;
  params.num_trees = 20;
  params.min_samples_leaf = 5;
  ml::GradientBoosting model(params);
  const std::vector<workload::LabeledQuery> train(labeled_.begin(),
                                                  labeled_.end() - 25);
  const std::vector<workload::LabeledQuery> test(labeled_.end() - 25,
                                                 labeled_.end());
  const auto result_or = RunQftModel(featurizer, model, train, test);
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& r = result_or.value();
  EXPECT_EQ(r.estimates.size(), test.size());
  EXPECT_EQ(r.qerrors.size(), test.size());
  EXPECT_EQ(r.summary.count, test.size());
  EXPECT_GT(r.model_bytes, 0u);
  EXPECT_GE(r.train_seconds, 0.0);
  for (size_t i = 0; i < test.size(); ++i) {
    EXPECT_GE(r.estimates[i], 1.0);
    EXPECT_DOUBLE_EQ(r.qerrors[i], ml::QError(test[i].card, r.estimates[i]));
  }
}

TEST_F(HarnessTest, GroupKeyHelpers) {
  const std::vector<int> attrs = NumAttributesOf(labeled_);
  const std::vector<int> preds = NumPredicatesOf(labeled_);
  ASSERT_EQ(attrs.size(), labeled_.size());
  ASSERT_EQ(preds.size(), labeled_.size());
  for (size_t i = 0; i < labeled_.size(); ++i) {
    EXPECT_EQ(attrs[i], labeled_[i].query.NumAttributes());
    EXPECT_EQ(preds[i], labeled_[i].query.NumSimplePredicates());
    EXPECT_GE(preds[i], attrs[i]);  // every attribute has >= 1 predicate
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  obs::ScopedTimer timer;
  // Burn a little CPU.
  volatile double acc = 0;
  for (int i = 0; i < 100000; ++i) acc = acc + i;
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_LT(timer.Seconds(), 10.0);
}

TEST(SummaryTest, SummarizeByGroupPinnedQuantiles) {
  // Regression pin for the histogram-backed quantile path: a fixed
  // deterministic workload of q-errors must keep reporting these exact
  // interpolated values. Inputs use only integer-derived doubles, so bucket
  // assignment is platform-exact. If QErrorBounds() or
  // obs::Histogram::Quantile changes, recompute the constants consciously.
  std::vector<double> errors;
  std::vector<int> groups;
  errors.reserve(400);
  for (int i = 0; i < 400; ++i) {
    // Values in [1.0, 11.0) spread by a full-period multiplicative walk.
    errors.push_back(1.0 + static_cast<double>((i * 37) % 1000) / 100.0);
    groups.push_back(i % 2);
  }
  const auto grouped = SummarizeByGroup(errors, groups);
  ASSERT_EQ(grouped.size(), 2u);
  // count/max are exact regardless of bucketing; mean is sum/count, exact.
  EXPECT_EQ(grouped.at(0).count, 200u);
  EXPECT_EQ(grouped.at(1).count, 200u);
  const ml::QErrorSummary& s0 = grouped.at(0);
  EXPECT_DOUBLE_EQ(s0.max, 10.98);
  // Pinned interpolated quantiles (fixed inputs -> fixed bucket counts).
  EXPECT_DOUBLE_EQ(s0.median, 5.975609756097561);
  EXPECT_DOUBLE_EQ(s0.p95, 12.619047619047619);
  // Sanity: the interpolated values stay within one bucket of the exact
  // sort-based quantiles.
  std::vector<double> g0;
  for (int i = 0; i < 400; i += 2) g0.push_back(errors[static_cast<size_t>(i)]);
  std::sort(g0.begin(), g0.end());
  const double exact_p50 = ml::QuantileSorted(g0, 0.50);
  const double exact_p95 = ml::QuantileSorted(g0, 0.95);
  EXPECT_GT(s0.median, exact_p50 / 1.5);
  EXPECT_LT(s0.median, exact_p50 * 1.5);
  EXPECT_GT(s0.p95, exact_p95 / 1.5);
  EXPECT_LT(s0.p95, exact_p95 * 1.5);
}

}  // namespace
}  // namespace qfcard::eval
