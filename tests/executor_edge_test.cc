// Executor edge cases, each cross-checked against the independent naive
// evaluators in src/testing/reference_eval.h (satellite of the differential
// testing subsystem; the fuzzer covers the same pairs on random inputs).

#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "test_util.h"
#include "testing/reference_eval.h"

namespace qfcard::query {
namespace {

using testing::ReferenceCount;
using testing::ReferenceJoinCount;
using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::IntColumn;
using testutil::SingleTableQuery;
using testutil::SmallTable;

// Engine and reference must agree exactly; returns the agreed count.
int64_t AgreedCount(const storage::Table& t, const Query& q) {
  const auto engine = Executor::Count(t, q);
  const auto ref = ReferenceCount(t, q);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(ref.ok()) << ref.status().ToString();
  if (!engine.ok() || !ref.ok()) return -1;
  EXPECT_EQ(engine.value(), ref.value());
  return engine.value();
}

TEST(ExecutorEdgeTest, EmptyInListMatchesNoRows) {
  // `a IN ()` — a compound with zero disjuncts. ValidateQuery rejects it at
  // the API boundary, but both evaluators must still agree on the SQL
  // semantics (an empty disjunction is false) for shrunken reproducers.
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  CompoundPredicate cp;
  cp.col = ColumnRef{0, 0};
  q.predicates.push_back(cp);  // no disjuncts
  EXPECT_EQ(AgreedCount(t, q), 0);
}

TEST(ExecutorEdgeTest, InvertedRangeMatchesNoRows) {
  // a >= 8 AND a <= 2: lo > hi, statically empty.
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kGe, 8}, {CmpOp::kLe, 2}}});
  EXPECT_EQ(AgreedCount(t, q), 0);
}

TEST(ExecutorEdgeTest, ConstantColumnAllOrNothing) {
  // A column where every row holds the same value (the engine has no NULLs;
  // a constant column is the degenerate single-value case).
  storage::Table t("constant");
  QFCARD_CHECK_OK(
      t.AddColumn(IntColumn("c", {7, 7, 7, 7, 7, 7})));
  Query q = SingleTableQuery("constant");
  AddPredicate(q, 0, CmpOp::kEq, 7);
  EXPECT_EQ(AgreedCount(t, q), 6);

  Query q_ne = SingleTableQuery("constant");
  AddPredicate(q_ne, 0, CmpOp::kNe, 7);
  EXPECT_EQ(AgreedCount(t, q_ne), 0);

  Query q_lt = SingleTableQuery("constant");
  AddPredicate(q_lt, 0, CmpOp::kLt, 7);
  EXPECT_EQ(AgreedCount(t, q_lt), 0);

  Query q_range = SingleTableQuery("constant");
  AddCompound(q_range, 0, {{{CmpOp::kGe, 7}, {CmpOp::kLe, 7}}});
  EXPECT_EQ(AgreedCount(t, q_range), 6);
}

TEST(ExecutorEdgeTest, GroupByOnConstantColumnIsOneGroup) {
  storage::Table t("constant");
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("c", {7, 7, 7, 7})));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("d", {1, 2, 1, 2})));
  Query q = SingleTableQuery("constant");
  q.group_by.push_back(ColumnRef{0, 0});
  EXPECT_EQ(AgreedCount(t, q), 1);
  q.group_by.push_back(ColumnRef{0, 1});
  EXPECT_EQ(AgreedCount(t, q), 2);
}

TEST(ExecutorEdgeTest, GroupByWithEmptySelectionHasZeroGroups) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kLt, -100);  // matches nothing
  q.group_by.push_back(ColumnRef{0, 1});
  EXPECT_EQ(AgreedCount(t, q), 0);
}

TEST(ExecutorEdgeTest, JoinProducingZeroRows) {
  // Disjoint key domains: every probe misses.
  storage::Catalog catalog;
  {
    storage::Table fact("fact");
    QFCARD_CHECK_OK(fact.AddColumn(IntColumn("id", {1, 2, 3, 4})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(fact)));
    storage::Table dim("dim");
    QFCARD_CHECK_OK(dim.AddColumn(IntColumn("fk", {10, 20, 30})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(dim)));
  }
  Query q;
  q.tables.push_back(TableRef{"fact", "fact"});
  q.tables.push_back(TableRef{"dim", "dim"});
  q.joins.push_back(JoinPredicate{ColumnRef{0, 0}, ColumnRef{1, 0}});

  const auto engine = JoinExecutor::Count(catalog, q);
  const auto ref = ReferenceJoinCount(catalog, q);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(engine.value(), 0);
  EXPECT_EQ(ref.value(), 0);
}

TEST(ExecutorEdgeTest, JoinWithSelectiveAndEmptyPredicates) {
  storage::Catalog catalog;
  {
    storage::Table fact("fact");
    QFCARD_CHECK_OK(fact.AddColumn(IntColumn("id", {1, 1, 2, 3})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(fact)));
    storage::Table dim("dim");
    QFCARD_CHECK_OK(dim.AddColumn(IntColumn("fk", {1, 2, 2, 5})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(dim)));
  }
  Query q;
  q.tables.push_back(TableRef{"fact", "fact"});
  q.tables.push_back(TableRef{"dim", "dim"});
  q.joins.push_back(JoinPredicate{ColumnRef{0, 0}, ColumnRef{1, 0}});

  // fact.id=1 matches dim.fk=1 once per fact row -> 2; id=2 matches twice.
  {
    const auto engine = JoinExecutor::Count(catalog, q);
    const auto ref = ReferenceJoinCount(catalog, q);
    ASSERT_TRUE(engine.ok() && ref.ok());
    EXPECT_EQ(engine.value(), ref.value());
    EXPECT_EQ(engine.value(), 4);
  }

  // A predicate that empties one side empties the join.
  CompoundPredicate cp;
  cp.col = ColumnRef{1, 0};
  ConjunctiveClause clause;
  clause.preds.push_back(SimplePredicate{ColumnRef{1, 0}, CmpOp::kGt, 100});
  cp.disjuncts.push_back(std::move(clause));
  q.predicates.push_back(std::move(cp));
  {
    const auto engine = JoinExecutor::Count(catalog, q);
    const auto ref = ReferenceJoinCount(catalog, q);
    ASSERT_TRUE(engine.ok() && ref.ok());
    EXPECT_EQ(engine.value(), 0);
    EXPECT_EQ(ref.value(), 0);
  }
}

}  // namespace
}  // namespace qfcard::query
