// Executor edge cases, each cross-checked against the independent naive
// evaluators in src/testing/reference_eval.h (satellite of the differential
// testing subsystem; the fuzzer covers the same pairs on random inputs).

#include <iterator>
#include <string>

#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "query/normalize.h"
#include "storage/column.h"
#include "test_util.h"
#include "testing/reference_eval.h"

namespace qfcard::query {
namespace {

using testing::ReferenceCount;
using testing::ReferenceJoinCount;
using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::IntColumn;
using testutil::SingleTableQuery;
using testutil::SmallTable;

// Engine and reference must agree exactly; returns the agreed count.
int64_t AgreedCount(const storage::Table& t, const Query& q) {
  const auto engine = Executor::Count(t, q);
  const auto ref = ReferenceCount(t, q);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(ref.ok()) << ref.status().ToString();
  if (!engine.ok() || !ref.ok()) return -1;
  EXPECT_EQ(engine.value(), ref.value());
  return engine.value();
}

TEST(ExecutorEdgeTest, EmptyInListMatchesNoRows) {
  // `a IN ()` — a compound with zero disjuncts. ValidateQuery rejects it at
  // the API boundary, but both evaluators must still agree on the SQL
  // semantics (an empty disjunction is false) for shrunken reproducers.
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  CompoundPredicate cp;
  cp.col = ColumnRef{0, 0};
  q.predicates.push_back(cp);  // no disjuncts
  EXPECT_EQ(AgreedCount(t, q), 0);
}

TEST(ExecutorEdgeTest, InvertedRangeMatchesNoRows) {
  // a >= 8 AND a <= 2: lo > hi, statically empty.
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kGe, 8}, {CmpOp::kLe, 2}}});
  EXPECT_EQ(AgreedCount(t, q), 0);
}

TEST(ExecutorEdgeTest, ConstantColumnAllOrNothing) {
  // A column where every row holds the same value (the engine has no NULLs;
  // a constant column is the degenerate single-value case).
  storage::Table t("constant");
  QFCARD_CHECK_OK(
      t.AddColumn(IntColumn("c", {7, 7, 7, 7, 7, 7})));
  Query q = SingleTableQuery("constant");
  AddPredicate(q, 0, CmpOp::kEq, 7);
  EXPECT_EQ(AgreedCount(t, q), 6);

  Query q_ne = SingleTableQuery("constant");
  AddPredicate(q_ne, 0, CmpOp::kNe, 7);
  EXPECT_EQ(AgreedCount(t, q_ne), 0);

  Query q_lt = SingleTableQuery("constant");
  AddPredicate(q_lt, 0, CmpOp::kLt, 7);
  EXPECT_EQ(AgreedCount(t, q_lt), 0);

  Query q_range = SingleTableQuery("constant");
  AddCompound(q_range, 0, {{{CmpOp::kGe, 7}, {CmpOp::kLe, 7}}});
  EXPECT_EQ(AgreedCount(t, q_range), 6);
}

TEST(ExecutorEdgeTest, GroupByOnConstantColumnIsOneGroup) {
  storage::Table t("constant");
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("c", {7, 7, 7, 7})));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("d", {1, 2, 1, 2})));
  Query q = SingleTableQuery("constant");
  q.group_by.push_back(ColumnRef{0, 0});
  EXPECT_EQ(AgreedCount(t, q), 1);
  q.group_by.push_back(ColumnRef{0, 1});
  EXPECT_EQ(AgreedCount(t, q), 2);
}

TEST(ExecutorEdgeTest, GroupByWithEmptySelectionHasZeroGroups) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kLt, -100);  // matches nothing
  q.group_by.push_back(ColumnRef{0, 1});
  EXPECT_EQ(AgreedCount(t, q), 0);
}

TEST(ExecutorEdgeTest, JoinProducingZeroRows) {
  // Disjoint key domains: every probe misses.
  storage::Catalog catalog;
  {
    storage::Table fact("fact");
    QFCARD_CHECK_OK(fact.AddColumn(IntColumn("id", {1, 2, 3, 4})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(fact)));
    storage::Table dim("dim");
    QFCARD_CHECK_OK(dim.AddColumn(IntColumn("fk", {10, 20, 30})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(dim)));
  }
  Query q;
  q.tables.push_back(TableRef{"fact", "fact"});
  q.tables.push_back(TableRef{"dim", "dim"});
  q.joins.push_back(JoinPredicate{ColumnRef{0, 0}, ColumnRef{1, 0}});

  const auto engine = JoinExecutor::Count(catalog, q);
  const auto ref = ReferenceJoinCount(catalog, q);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(engine.value(), 0);
  EXPECT_EQ(ref.value(), 0);
}

TEST(ExecutorEdgeTest, JoinWithSelectiveAndEmptyPredicates) {
  storage::Catalog catalog;
  {
    storage::Table fact("fact");
    QFCARD_CHECK_OK(fact.AddColumn(IntColumn("id", {1, 1, 2, 3})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(fact)));
    storage::Table dim("dim");
    QFCARD_CHECK_OK(dim.AddColumn(IntColumn("fk", {1, 2, 2, 5})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(dim)));
  }
  Query q;
  q.tables.push_back(TableRef{"fact", "fact"});
  q.tables.push_back(TableRef{"dim", "dim"});
  q.joins.push_back(JoinPredicate{ColumnRef{0, 0}, ColumnRef{1, 0}});

  // fact.id=1 matches dim.fk=1 once per fact row -> 2; id=2 matches twice.
  {
    const auto engine = JoinExecutor::Count(catalog, q);
    const auto ref = ReferenceJoinCount(catalog, q);
    ASSERT_TRUE(engine.ok() && ref.ok());
    EXPECT_EQ(engine.value(), ref.value());
    EXPECT_EQ(engine.value(), 4);
  }

  // A predicate that empties one side empties the join.
  CompoundPredicate cp;
  cp.col = ColumnRef{1, 0};
  ConjunctiveClause clause;
  clause.preds.push_back(SimplePredicate{ColumnRef{1, 0}, CmpOp::kGt, 100});
  cp.disjuncts.push_back(std::move(clause));
  q.predicates.push_back(std::move(cp));
  {
    const auto engine = JoinExecutor::Count(catalog, q);
    const auto ref = ReferenceJoinCount(catalog, q);
    ASSERT_TRUE(engine.ok() && ref.ok());
    EXPECT_EQ(engine.value(), 0);
    EXPECT_EQ(ref.value(), 0);
  }
}

// ---- LIKE metamorphic invariants -----------------------------------------
// Prefix LIKE desugars to dictionary-code ranges (query/normalize +
// Dictionary::PrefixCodeRange). These invariants hold for ANY data, so they
// catch desugaring bugs without golden counts; every count is additionally
// cross-checked against the naive reference evaluator.

storage::Catalog LikeCatalog() {
  storage::Catalog catalog;
  storage::Table t("fruits");
  storage::Dictionary dict = storage::Dictionary::FromValues(
      {"apple", "applet", "apricot", "banana", "band", "bandana", "cherry"});
  storage::Column nm("nm", storage::ColumnType::kDictString);
  for (const char* v : {"apple", "applet", "applet", "apricot", "banana",
                        "band", "band", "bandana", "cherry", "apple"}) {
    nm.Append(static_cast<double>(dict.Code(v).value()));
  }
  nm.SetDictionary(std::move(dict));
  QFCARD_CHECK_OK(t.AddColumn(std::move(nm)));
  QFCARD_CHECK_OK(
      t.AddColumn(IntColumn("n", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10})));
  QFCARD_CHECK_OK(catalog.AddTable(std::move(t)));
  return catalog;
}

int64_t LikeCount(const storage::Catalog& catalog, const std::string& sql) {
  const auto q = ParseQuery(sql, catalog);
  EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
  if (!q.ok()) return -1;
  return AgreedCount(catalog.table(0), q.value());
}

TEST(LikeMetamorphicTest, LongerPrefixNeverMatchesMore) {
  const storage::Catalog catalog = LikeCatalog();
  // Each extension of the prefix can only shrink the match set.
  const char* chain[] = {
      "SELECT count(*) FROM fruits WHERE nm LIKE '%';",
      "SELECT count(*) FROM fruits WHERE nm LIKE 'a%';",
      "SELECT count(*) FROM fruits WHERE nm LIKE 'ap%';",
      "SELECT count(*) FROM fruits WHERE nm LIKE 'app%';",
      "SELECT count(*) FROM fruits WHERE nm LIKE 'apple%';",
      "SELECT count(*) FROM fruits WHERE nm LIKE 'applet%';",
  };
  int64_t prev = LikeCount(catalog, chain[0]);
  EXPECT_EQ(prev, 10);  // LIKE '%' matches every row
  for (size_t i = 1; i < std::size(chain); ++i) {
    const int64_t count = LikeCount(catalog, chain[i]);
    EXPECT_LE(count, prev) << chain[i];
    prev = count;
  }
  EXPECT_EQ(prev, 2);  // "applet" rows
}

TEST(LikeMetamorphicTest, PrefixCountIsSumOfDisjointRefinements) {
  const storage::Catalog catalog = LikeCatalog();
  // "ban%" splits exactly into banana-rows plus band-rows (band, bandana
  // both extend "band"; banana does not).
  const int64_t ban =
      LikeCount(catalog, "SELECT count(*) FROM fruits WHERE nm LIKE 'ban%';");
  const int64_t banana = LikeCount(
      catalog, "SELECT count(*) FROM fruits WHERE nm LIKE 'banana%';");
  const int64_t band =
      LikeCount(catalog, "SELECT count(*) FROM fruits WHERE nm LIKE 'band%';");
  EXPECT_EQ(ban, banana + band);
}

TEST(LikeMetamorphicTest, NoWildcardEqualsEquality) {
  const storage::Catalog catalog = LikeCatalog();
  for (const char* value : {"apple", "band", "cherry"}) {
    const int64_t via_like = LikeCount(
        catalog, std::string("SELECT count(*) FROM fruits WHERE nm LIKE '") +
                     value + "';");
    const int64_t via_eq = LikeCount(
        catalog, std::string("SELECT count(*) FROM fruits WHERE nm = '") +
                     value + "';");
    EXPECT_EQ(via_like, via_eq) << value;
  }
}

TEST(LikeMetamorphicTest, UnmatchedPrefixMatchesNothing) {
  const storage::Catalog catalog = LikeCatalog();
  EXPECT_EQ(
      LikeCount(catalog, "SELECT count(*) FROM fruits WHERE nm LIKE 'zz%';"),
      0);
  // A prefix lexicographically below every value is also empty.
  EXPECT_EQ(
      LikeCount(catalog, "SELECT count(*) FROM fruits WHERE nm LIKE 'aa%';"),
      0);
}

TEST(LikeMetamorphicTest, LikeComposesWithConjunctsMonotonically) {
  const storage::Catalog catalog = LikeCatalog();
  const int64_t alone =
      LikeCount(catalog, "SELECT count(*) FROM fruits WHERE nm LIKE 'ap%';");
  const int64_t conjoined = LikeCount(
      catalog,
      "SELECT count(*) FROM fruits WHERE nm LIKE 'ap%' AND n <= 3;");
  EXPECT_LE(conjoined, alone);
  EXPECT_EQ(conjoined, 3);  // rows 1..3 all carry ap-prefixed names
}

}  // namespace
}  // namespace qfcard::query
