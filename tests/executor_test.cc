#include "query/executor.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/join_executor.h"
#include "query/schema_graph.h"
#include "test_util.h"

namespace qfcard::query {
namespace {

using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::IntColumn;
using testutil::SingleTableQuery;
using testutil::SmallTable;

// Brute-force reference: evaluate every compound on every row.
int64_t NaiveCount(const storage::Table& t, const Query& q) {
  int64_t count = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    bool ok = true;
    for (const CompoundPredicate& cp : q.predicates) {
      if (!EvalCompoundOnRow(t, r, cp)) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
  }
  return count;
}

TEST(ExecutorTest, EmptyPredicateListCountsAllRows) {
  const storage::Table t = SmallTable();
  const Query q = SingleTableQuery("small");
  ASSERT_TRUE(Executor::Count(t, q).ok());
  EXPECT_EQ(Executor::Count(t, q).value(), 10);
}

TEST(ExecutorTest, SimpleRange) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kGe, 3}, {CmpOp::kLe, 7}}});
  EXPECT_EQ(Executor::Count(t, q).value(), 5);
}

TEST(ExecutorTest, DisjunctionAcrossClauses) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kLe, 1}}, {{CmpOp::kGe, 9}}});
  EXPECT_EQ(Executor::Count(t, q).value(), 3);  // {0,1,9}
}

TEST(ExecutorTest, MultiAttributeConjunction) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kGe, 2);
  AddPredicate(q, 1, CmpOp::kLt, 70);  // b < 70 -> a < 7
  EXPECT_EQ(Executor::Count(t, q).value(), 5);  // a in {2..6}
}

TEST(ExecutorTest, RejectsJoinQueries) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  q.tables.push_back(TableRef{"other", "other"});
  EXPECT_EQ(Executor::Count(t, q).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, FilterReturnsRowIds) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kEq, 4}}});
  const auto rows_or = Executor::Filter(t, q);
  ASSERT_TRUE(rows_or.ok());
  ASSERT_EQ(rows_or.value().size(), 1u);
  EXPECT_EQ(rows_or.value()[0], 4);
}

TEST(ExecutorTest, GroupByCountsGroups) {
  storage::Table t("t");
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("g", {1, 1, 2, 2, 3, 3})));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("v", {5, 6, 7, 8, 9, 10})));
  Query q = SingleTableQuery("t");
  AddPredicate(q, 1, CmpOp::kLe, 8);  // rows 0..3 -> groups {1,2}
  q.group_by.push_back(ColumnRef{0, 0});
  EXPECT_EQ(Executor::Count(t, q).value(), 2);
}

// Property test: executor agrees with per-row brute force on randomized
// mixed queries over a randomized table.
class ExecutorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzzTest, MatchesNaiveEvaluation) {
  common::Rng rng(GetParam());
  storage::Table t("fuzz");
  const int64_t rows = 500;
  for (int c = 0; c < 4; ++c) {
    std::vector<double> values;
    values.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      values.push_back(static_cast<double>(rng.UniformInt(0, 30)));
    }
    QFCARD_CHECK_OK(
        t.AddColumn(IntColumn("c" + std::to_string(c), values)));
  }
  for (int iter = 0; iter < 20; ++iter) {
    Query q = SingleTableQuery("fuzz");
    const int n_attrs = static_cast<int>(rng.UniformInt(1, 4));
    const std::vector<int> attrs = rng.SampleWithoutReplacement(4, n_attrs);
    for (const int a : attrs) {
      const int n_clauses = static_cast<int>(rng.UniformInt(1, 3));
      std::vector<std::vector<std::pair<CmpOp, double>>> clauses;
      for (int cl = 0; cl < n_clauses; ++cl) {
        const int n_preds = static_cast<int>(rng.UniformInt(1, 3));
        std::vector<std::pair<CmpOp, double>> preds;
        for (int p = 0; p < n_preds; ++p) {
          const CmpOp op = static_cast<CmpOp>(rng.UniformInt(0, 5));
          preds.push_back({op, static_cast<double>(rng.UniformInt(0, 30))});
        }
        clauses.push_back(std::move(preds));
      }
      AddCompound(q, a, clauses);
    }
    const auto count_or = Executor::Count(t, q);
    ASSERT_TRUE(count_or.ok()) << count_or.status();
    EXPECT_EQ(count_or.value(), NaiveCount(t, q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// orders(id, cust_id, amount) -> customers(id, region)
storage::Catalog MakeJoinCatalog() {
  storage::Catalog cat;
  storage::Table customers("customers");
  QFCARD_CHECK_OK(customers.AddColumn(IntColumn("id", {0, 1, 2})));
  QFCARD_CHECK_OK(customers.AddColumn(IntColumn("region", {10, 20, 10})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(customers)));

  storage::Table orders("orders");
  QFCARD_CHECK_OK(
      orders.AddColumn(IntColumn("id", {0, 1, 2, 3, 4, 5})));
  QFCARD_CHECK_OK(
      orders.AddColumn(IntColumn("cust_id", {0, 0, 1, 1, 2, 9})));
  QFCARD_CHECK_OK(
      orders.AddColumn(IntColumn("amount", {5, 15, 25, 35, 45, 55})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(orders)));
  return cat;
}

SchemaGraph MakeJoinGraph() {
  SchemaGraph g;
  g.AddEdge(FkEdge{"orders", "cust_id", "customers", "id"});
  return g;
}

Query MakeJoinQuery() {
  Query q;
  q.tables.push_back(TableRef{"orders", "orders"});
  q.tables.push_back(TableRef{"customers", "customers"});
  q.joins.push_back(JoinPredicate{ColumnRef{0, 1}, ColumnRef{1, 0}});
  return q;
}

TEST(JoinExecutorTest, PlainJoinCount) {
  const storage::Catalog cat = MakeJoinCatalog();
  const Query q = MakeJoinQuery();
  // orders rows with cust_id in {0,1,2} = 5 (cust_id 9 dangles).
  EXPECT_EQ(JoinExecutor::Count(cat, q).value(), 5);
}

TEST(JoinExecutorTest, JoinWithSelections) {
  const storage::Catalog cat = MakeJoinCatalog();
  Query q = MakeJoinQuery();
  // region = 10 keeps customers {0, 2}; orders for those: {0,1} and {4}.
  CompoundPredicate cp;
  cp.col = ColumnRef{1, 1};
  ConjunctiveClause clause;
  clause.preds.push_back(SimplePredicate{cp.col, CmpOp::kEq, 10});
  cp.disjuncts.push_back(clause);
  q.predicates.push_back(cp);
  EXPECT_EQ(JoinExecutor::Count(cat, q).value(), 3);
}

TEST(JoinExecutorTest, SelectionsOnBothSides) {
  const storage::Catalog cat = MakeJoinCatalog();
  Query q = MakeJoinQuery();
  CompoundPredicate region;
  region.col = ColumnRef{1, 1};
  ConjunctiveClause rc;
  rc.preds.push_back(SimplePredicate{region.col, CmpOp::kEq, 10});
  region.disjuncts.push_back(rc);
  q.predicates.push_back(region);
  CompoundPredicate amount;
  amount.col = ColumnRef{0, 2};
  ConjunctiveClause ac;
  ac.preds.push_back(SimplePredicate{amount.col, CmpOp::kGt, 10});
  amount.disjuncts.push_back(ac);
  q.predicates.push_back(amount);
  // Qualifying: order1(cust0, 15), order4(cust2, 45).
  EXPECT_EQ(JoinExecutor::Count(cat, q).value(), 2);
}

TEST(JoinExecutorTest, SingleTableFallback) {
  const storage::Catalog cat = MakeJoinCatalog();
  Query q;
  q.tables.push_back(TableRef{"orders", "orders"});
  EXPECT_EQ(JoinExecutor::Count(cat, q).value(), 6);
}

TEST(JoinExecutorTest, MaterializeProducesJoinedTable) {
  const storage::Catalog cat = MakeJoinCatalog();
  const SchemaGraph graph = MakeJoinGraph();
  const auto mat_or =
      JoinExecutor::Materialize(cat, {"orders", "customers"}, graph);
  ASSERT_TRUE(mat_or.ok()) << mat_or.status();
  const storage::Table& mat = mat_or.value();
  EXPECT_EQ(mat.num_rows(), 5);
  EXPECT_EQ(mat.num_columns(), 5);
  ASSERT_TRUE(mat.ColumnIndex("orders.amount").ok());
  ASSERT_TRUE(mat.ColumnIndex("customers.region").ok());
  // Count over the materialization matches the join count with selections.
  Query local;
  local.tables.push_back(TableRef{mat.name(), mat.name()});
  const int region_col = mat.ColumnIndex("customers.region").value();
  testutil::AddPredicate(local, region_col, CmpOp::kEq, 10);
  EXPECT_EQ(Executor::Count(mat, local).value(), 3);
}

// Fuzz: three-table joins with random FK values and random selections,
// checked against a brute-force triple nested loop.
class JoinFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinFuzzTest, MatchesNestedLoopReference) {
  common::Rng rng(GetParam());
  storage::Catalog cat;
  // dim(id, x), fact(dim_id, y), extra(dim_id, z): two satellites around dim.
  const int64_t n_dim = 20;
  {
    storage::Table dim("dim");
    std::vector<double> id;
    std::vector<double> x;
    for (int64_t i = 0; i < n_dim; ++i) {
      id.push_back(static_cast<double>(i));
      x.push_back(static_cast<double>(rng.UniformInt(0, 9)));
    }
    QFCARD_CHECK_OK(dim.AddColumn(IntColumn("id", id)));
    QFCARD_CHECK_OK(dim.AddColumn(IntColumn("x", x)));
    QFCARD_CHECK_OK(cat.AddTable(std::move(dim)));
  }
  for (const char* name : {"fact", "extra"}) {
    storage::Table t(name);
    std::vector<double> fk;
    std::vector<double> payload;
    const int64_t rows = rng.UniformInt(30, 80);
    for (int64_t i = 0; i < rows; ++i) {
      // Some dangling FKs on purpose.
      fk.push_back(static_cast<double>(rng.UniformInt(0, n_dim + 4)));
      payload.push_back(static_cast<double>(rng.UniformInt(0, 9)));
    }
    QFCARD_CHECK_OK(t.AddColumn(IntColumn("dim_id", fk)));
    QFCARD_CHECK_OK(t.AddColumn(IntColumn(name[0] == 'f' ? "y" : "z", payload)));
    QFCARD_CHECK_OK(cat.AddTable(std::move(t)));
  }
  const storage::Table& dim = *cat.GetTable("dim").value();
  const storage::Table& fact = *cat.GetTable("fact").value();
  const storage::Table& extra = *cat.GetTable("extra").value();

  for (int iter = 0; iter < 10; ++iter) {
    Query q;
    q.tables.push_back(TableRef{"dim", "dim"});
    q.tables.push_back(TableRef{"fact", "fact"});
    q.tables.push_back(TableRef{"extra", "extra"});
    q.joins.push_back(JoinPredicate{ColumnRef{1, 0}, ColumnRef{0, 0}});
    q.joins.push_back(JoinPredicate{ColumnRef{2, 0}, ColumnRef{0, 0}});
    // Random selections on x / y / z.
    const auto maybe_pred = [&](int slot, int col) {
      if (!rng.Bernoulli(0.7)) return;
      CompoundPredicate cp;
      cp.col = ColumnRef{slot, col};
      ConjunctiveClause clause;
      clause.preds.push_back(SimplePredicate{
          cp.col, static_cast<CmpOp>(rng.UniformInt(0, 5)),
          static_cast<double>(rng.UniformInt(0, 9))});
      cp.disjuncts.push_back(clause);
      q.predicates.push_back(cp);
    };
    maybe_pred(0, 1);
    maybe_pred(1, 1);
    maybe_pred(2, 1);

    // Brute force.
    int64_t expected = 0;
    for (int64_t d = 0; d < dim.num_rows(); ++d) {
      bool dim_ok = true;
      for (const CompoundPredicate& cp : q.predicates) {
        if (cp.col.table == 0 && !EvalCompoundOnRow(dim, d, cp)) dim_ok = false;
      }
      if (!dim_ok) continue;
      for (int64_t f = 0; f < fact.num_rows(); ++f) {
        if (fact.column(0).Get(f) != dim.column(0).Get(d)) continue;
        bool fact_ok = true;
        for (const CompoundPredicate& cp : q.predicates) {
          if (cp.col.table == 1 && !EvalCompoundOnRow(fact, f, cp)) {
            fact_ok = false;
          }
        }
        if (!fact_ok) continue;
        for (int64_t e = 0; e < extra.num_rows(); ++e) {
          if (extra.column(0).Get(e) != dim.column(0).Get(d)) continue;
          bool extra_ok = true;
          for (const CompoundPredicate& cp : q.predicates) {
            if (cp.col.table == 2 && !EvalCompoundOnRow(extra, e, cp)) {
              extra_ok = false;
            }
          }
          if (extra_ok) ++expected;
        }
      }
    }
    const auto count_or = JoinExecutor::Count(cat, q);
    ASSERT_TRUE(count_or.ok()) << count_or.status();
    EXPECT_EQ(count_or.value(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinFuzzTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(SchemaGraphTest, ConnectivityAndEnumeration) {
  SchemaGraph g;
  g.AddEdge(FkEdge{"b", "a_id", "a", "id"});
  g.AddEdge(FkEdge{"c", "a_id", "a", "id"});
  EXPECT_TRUE(g.IsConnected({"a", "b"}));
  EXPECT_TRUE(g.IsConnected({"a", "b", "c"}));
  EXPECT_FALSE(g.IsConnected({"b", "c"}));
  EXPECT_TRUE(g.IsConnected({"b"}));
  const auto subs = g.EnumerateSubSchemas({"a", "b", "c"}, 2, 3);
  // {a,b}, {a,c}, {a,b,c} are connected; {b,c} is not.
  EXPECT_EQ(subs.size(), 3u);
}

TEST(SchemaGraphTest, PopulateJoinsBuildsPredicates) {
  const storage::Catalog cat = MakeJoinCatalog();
  const SchemaGraph graph = MakeJoinGraph();
  Query q;
  q.tables.push_back(TableRef{"customers", "customers"});
  q.tables.push_back(TableRef{"orders", "orders"});
  ASSERT_TRUE(graph.PopulateJoins(cat, q).ok());
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(JoinExecutor::Count(cat, q).value(), 5);
}

TEST(SchemaGraphTest, PopulateJoinsRejectsDisconnectedTables) {
  const storage::Catalog cat = MakeJoinCatalog();
  SchemaGraph empty_graph;
  Query q;
  q.tables.push_back(TableRef{"orders", "orders"});
  q.tables.push_back(TableRef{"customers", "customers"});
  EXPECT_EQ(empty_graph.PopulateJoins(cat, q).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(JoinExecutorTest, DisconnectedJoinGraphRejected) {
  const storage::Catalog cat = MakeJoinCatalog();
  Query q;
  q.tables.push_back(TableRef{"orders", "orders"});
  q.tables.push_back(TableRef{"customers", "customers"});
  // No join predicates: a cross product, which the executor refuses.
  EXPECT_EQ(JoinExecutor::Count(cat, q).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(JoinExecutorTest, EmptySelectionShortCircuits) {
  const storage::Catalog cat = MakeJoinCatalog();
  Query q = MakeJoinQuery();
  CompoundPredicate cp;
  cp.col = ColumnRef{0, 2};  // orders.amount
  ConjunctiveClause clause;
  clause.preds.push_back(SimplePredicate{cp.col, CmpOp::kGt, 1e9});
  cp.disjuncts.push_back(clause);
  q.predicates.push_back(cp);
  EXPECT_EQ(JoinExecutor::Count(cat, q).value(), 0);
}

TEST(SchemaGraphTest, SubSchemaKeyIsOrderInvariant) {
  EXPECT_EQ(SubSchemaKey({"b", "a"}), SubSchemaKey({"a", "b"}));
  EXPECT_EQ(SubSchemaKey({"a", "b"}), "a+b");
}

}  // namespace
}  // namespace qfcard::query
