// Tests for the workload-family registry (src/workload/families.h): every
// registered family must build a usable instance at tiny sizes, builds must
// be deterministic in the seed, the capability flags must match what the
// generators actually emit (the matrix runner trusts them for its
// unsupported-cell gates), and name resolution must fail with a
// did-you-mean suggestion.

#include "workload/families.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/normalize.h"
#include "storage/column.h"
#include "workload/strings.h"

namespace qfcard::workload {
namespace {

FamilySizes TinySizes() {
  FamilySizes sizes;
  sizes.rows = 500;
  sizes.train = 24;
  sizes.test = 16;
  return sizes;
}

// Renders an instance's workload as SQL for structural comparison.
std::vector<std::string> WorkloadSql(const FamilyInstance& inst) {
  std::vector<std::string> sql;
  for (const auto* split : {&inst.train, &inst.test}) {
    for (const LabeledQuery& lq : *split) {
      sql.push_back(query::QueryToSql(lq.query, inst.catalog).value() + "\t" +
                    std::to_string(lq.card));
    }
  }
  return sql;
}

TEST(FamiliesTest, EveryFamilyBuildsANonEmptyLabeledInstance) {
  for (const WorkloadFamily& family : RegisteredFamilies()) {
    SCOPED_TRACE(family.name);
    const auto inst_or = family.build(TinySizes(), 7);
    ASSERT_TRUE(inst_or.ok()) << inst_or.status().ToString();
    const FamilyInstance& inst = inst_or.value();
    EXPECT_FALSE(inst.train.empty());
    EXPECT_FALSE(inst.test.empty());
    EXPECT_GT(inst.catalog.num_tables(), 0);
    EXPECT_TRUE(inst.catalog.GetTable(inst.primary_table).ok());
    // Labeling drops empty results, so every stored card is positive.
    for (const auto* split : {&inst.train, &inst.test}) {
      for (const LabeledQuery& lq : *split) EXPECT_GT(lq.card, 0.0);
    }
  }
}

TEST(FamiliesTest, BuildsAreDeterministicInTheSeed) {
  for (const WorkloadFamily& family : RegisteredFamilies()) {
    SCOPED_TRACE(family.name);
    const auto a = family.build(TinySizes(), 11);
    const auto b = family.build(TinySizes(), 11);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(WorkloadSql(a.value()), WorkloadSql(b.value()));
    const auto c = family.build(TinySizes(), 12);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(WorkloadSql(a.value()), WorkloadSql(c.value()))
        << "different seeds should give different workloads";
  }
}

TEST(FamiliesTest, CapabilityFlagsMatchGeneratedQueries) {
  for (const WorkloadFamily& family : RegisteredFamilies()) {
    SCOPED_TRACE(family.name);
    const auto inst_or = family.build(TinySizes(), 3);
    ASSERT_TRUE(inst_or.ok()) << inst_or.status().ToString();
    const FamilyInstance& inst = inst_or.value();
    bool any_join = false;
    bool any_disjunction = false;
    bool any_group_by = false;
    for (const auto* split : {&inst.train, &inst.test}) {
      for (const LabeledQuery& lq : *split) {
        any_join |= lq.query.tables.size() > 1;
        any_group_by |= !lq.query.group_by.empty();
        for (const auto& cp : lq.query.predicates) {
          any_disjunction |= cp.disjuncts.size() > 1 ||
                             (cp.disjuncts.size() == 1 &&
                              cp.disjuncts[0].preds.empty());
        }
      }
    }
    EXPECT_EQ(any_join, family.joins);
    EXPECT_EQ(any_group_by, family.group_by);
    if (!family.disjunctions) {
      EXPECT_FALSE(any_disjunction)
          << "family does not declare disjunctions but generated one";
    }
  }
}

TEST(FamiliesTest, StringsFamilyEmitsDictionaryPrefixRanges) {
  const WorkloadFamily* family = FamilyNamed("strings").value();
  ASSERT_TRUE(family->strings);
  const auto inst_or = family->build(TinySizes(), 5);
  ASSERT_TRUE(inst_or.ok()) << inst_or.status().ToString();
  const FamilyInstance& inst = inst_or.value();
  const storage::Table& table =
      *inst.catalog.GetTable(inst.primary_table).value();

  // The items table must carry dictionary-encoded string columns...
  int dict_columns = 0;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).has_dictionary()) ++dict_columns;
  }
  EXPECT_GE(dict_columns, 2) << "strings family should dict-encode columns";

  // ...and the workload must hit them with two-sided ranges — the
  // desugared form of prefix LIKE (Dictionary::PrefixCodeRange).
  int dict_range_predicates = 0;
  for (const auto* split : {&inst.train, &inst.test}) {
    for (const LabeledQuery& lq : *split) {
      for (const auto& cp : lq.query.predicates) {
        if (!table.column(cp.col.column).has_dictionary()) continue;
        for (const auto& clause : cp.disjuncts) {
          bool has_ge = false;
          bool has_lt = false;
          for (const auto& p : clause.preds) {
            has_ge |= p.op == query::CmpOp::kGe;
            has_lt |= p.op == query::CmpOp::kLt;
          }
          if (has_ge && has_lt) ++dict_range_predicates;
        }
      }
    }
  }
  EXPECT_GT(dict_range_predicates, 0)
      << "strings family generated no prefix-style ranges on dict columns";
}

TEST(FamiliesTest, FamilyNamedResolvesCaseInsensitivelyWithDidYouMean) {
  EXPECT_TRUE(FamilyNamed("ZIPF_SKEW").ok());
  const auto missing = FamilyNamed("zipf_skw");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("did you mean"),
            std::string::npos);
  EXPECT_NE(missing.status().ToString().find("zipf_skew"),
            std::string::npos);
}

TEST(FamiliesTest, FamilyNamesMatchesRegistryOrder) {
  const std::vector<std::string> names = FamilyNames();
  ASSERT_EQ(names.size(), RegisteredFamilies().size());
  EXPECT_NE(std::find(names.begin(), names.end(), "conjunctive"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "drift"), names.end());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], RegisteredFamilies()[i].name);
  }
}

TEST(StringsTableTest, StemSkewConcentratesNames) {
  StringsOptions options;
  options.num_rows = 2000;
  const storage::Table table = MakeStringsTable(options);
  ASSERT_EQ(table.num_rows(), 2000);
  const storage::Column& name =
      table.column(table.ColumnIndex("name").value());
  ASSERT_TRUE(name.has_dictionary());
  // Zipf-skewed stems: the most common name code must cover well over the
  // uniform share of rows.
  std::vector<int64_t> counts(name.dictionary().size(), 0);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    ++counts[static_cast<size_t>(name.Get(r))];
  }
  const int64_t top = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(top, table.num_rows() / static_cast<int64_t>(counts.size()) * 4);
}

}  // namespace
}  // namespace qfcard::workload
