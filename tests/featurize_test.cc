#include "featurize/feature_schema.h"

#include "common/random.h"
#include "featurize/extensions.h"
#include "featurize/join_encoding.h"
#include "featurize/mscn_featurizer.h"
#include "featurize/partitioner.h"
#include "featurize/range.h"
#include "featurize/singular.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/imdb.h"

namespace qfcard::featurize {
namespace {

using query::CmpOp;
using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::SingleTableQuery;
using testutil::SmallTable;

// Schema of the paper's Section 3.2 example: A in [-9, 50], B in [0, 115],
// C in {1, 2}; all integral.
FeatureSchema PaperSchema() {
  std::vector<AttributeInfo> attrs(3);
  attrs[0] = AttributeInfo{"A", -9, 50, true, 60};
  attrs[1] = AttributeInfo{"B", 0, 115, true, 116};
  attrs[2] = AttributeInfo{"C", 1, 2, true, 2};
  return FeatureSchema(std::move(attrs));
}

TEST(FeatureSchemaTest, FromTableUsesStats) {
  const storage::Table t = SmallTable();
  const FeatureSchema schema = FeatureSchema::FromTable(t);
  ASSERT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(schema.attr(0).name, "a");
  EXPECT_EQ(schema.attr(0).min, 0);
  EXPECT_EQ(schema.attr(0).max, 9);
  EXPECT_TRUE(schema.attr(0).integral);
  EXPECT_EQ(schema.attr(1).max, 90);
}

TEST(FeatureSchemaTest, DomainSize) {
  EXPECT_DOUBLE_EQ((AttributeInfo{"x", 0, 9, true, 10}).DomainSize(), 10.0);
  EXPECT_DOUBLE_EQ((AttributeInfo{"x", 0.0, 2.5, false, 0}).DomainSize(), 2.5);
  EXPECT_DOUBLE_EQ((AttributeInfo{"x", 5, 5, true, 1}).DomainSize(), 1.0);
}

TEST(EquiWidthPartitionerTest, PaperIndexFormula) {
  // Section 3.2: A in [-9, 50], n = 12 -> value 7 maps to index
  // floor((7 - (-9)) / (50 - (-9) + 1) * 12) = floor(3.2) = 3.
  const AttributeInfo a{"A", -9, 50, true, 60};
  const EquiWidthPartitioner& part = EquiWidthPartitioner::Get();
  EXPECT_EQ(part.NumPartitions(a, 12), 12);
  EXPECT_EQ(part.IndexOf(a, 12, 7), 3);
  EXPECT_EQ(part.IndexOf(a, 12, -9), 0);
  EXPECT_EQ(part.IndexOf(a, 12, 50), 11);
}

TEST(EquiWidthPartitionerTest, SmallDomainShrinksToDomain) {
  const AttributeInfo c{"C", 1, 2, true, 2};
  const EquiWidthPartitioner& part = EquiWidthPartitioner::Get();
  EXPECT_EQ(part.NumPartitions(c, 12), 2);
  EXPECT_EQ(part.IndexOf(c, 12, 1), 0);
  EXPECT_EQ(part.IndexOf(c, 12, 2), 1);
}

TEST(EquiWidthPartitionerTest, ClampsOutOfDomainValues) {
  const AttributeInfo a{"A", 0, 9, true, 10};
  const EquiWidthPartitioner& part = EquiWidthPartitioner::Get();
  EXPECT_EQ(part.IndexOf(a, 5, -100), 0);
  EXPECT_EQ(part.IndexOf(a, 5, 100), 4);
}

TEST(EquiWidthPartitionerTest, ContinuousDomain) {
  const AttributeInfo x{"x", 0.0, 1.0, false, 0};
  const EquiWidthPartitioner& part = EquiWidthPartitioner::Get();
  EXPECT_EQ(part.NumPartitions(x, 4), 4);
  EXPECT_EQ(part.IndexOf(x, 4, 0.0), 0);
  EXPECT_EQ(part.IndexOf(x, 4, 0.49), 1);
  EXPECT_EQ(part.IndexOf(x, 4, 1.0), 3);  // max value lands in last partition
}

TEST(EquiDepthPartitionerTest, BalancesSkewedData) {
  storage::Table t("t");
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(1);
  for (int i = 0; i < 100; ++i) values.push_back(i + 2);
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("x", values)));
  const EquiDepthPartitioner part = EquiDepthPartitioner::FromTable(t, 8);
  const FeatureSchema schema = FeatureSchema::FromTable(t);
  // The spike at 1 collapses many quantiles; far fewer than 8 partitions.
  EXPECT_LT(part.NumPartitions(schema.attr(0), 8), 8);
  EXPECT_GE(part.NumPartitions(schema.attr(0), 8), 2);
  // Index is monotone in the value.
  int prev = -1;
  for (const double v : {1.0, 2.0, 50.0, 101.0}) {
    const int idx = part.IndexOf(schema.attr(0), 8, v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(VOptimalPartitionerTest, IsolatesFrequencySpikes) {
  // A huge spike at one value should get its own partition boundary.
  storage::Table t("t");
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(10);
  for (int i = 0; i < 100; ++i) values.push_back(i % 20);
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("x", values)));
  const VOptimalPartitioner part = VOptimalPartitioner::FromTable(t, 4);
  const FeatureSchema schema = FeatureSchema::FromTable(t);
  const AttributeInfo& attr = schema.attr(0);
  EXPECT_LE(part.NumPartitions(attr, 4), 4);
  EXPECT_GE(part.NumPartitions(attr, 4), 2);
  // The spike value must not share its partition with every other value:
  // some value below and some above 10 land in different partitions than
  // at least one other probe.
  const int spike = part.IndexOf(attr, 4, 10);
  int distinct_partitions = 1;
  int prev = part.IndexOf(attr, 4, 0);
  for (const double v : {5.0, 9.0, 10.0, 11.0, 19.0}) {
    const int idx = part.IndexOf(attr, 4, v);
    EXPECT_GE(idx, prev);  // monotone
    if (idx != prev) ++distinct_partitions;
    prev = idx;
  }
  EXPECT_GE(distinct_partitions, 2);
  (void)spike;
}

TEST(VOptimalPartitionerTest, MonotoneAndInRange) {
  common::Rng rng(123);
  storage::Table t("t");
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<double>(rng.Zipf(200, 1.2)));
  }
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("x", values)));
  const VOptimalPartitioner part = VOptimalPartitioner::FromTable(t, 16);
  const FeatureSchema schema = FeatureSchema::FromTable(t);
  const AttributeInfo& attr = schema.attr(0);
  const int n = part.NumPartitions(attr, 16);
  EXPECT_LE(n, 16);
  int prev = -1;
  for (double v = attr.min; v <= attr.max; v += 1.0) {
    const int idx = part.IndexOf(attr, 16, v);
    EXPECT_GE(idx, prev);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, n);
    prev = idx;
  }
}

TEST(VOptimalPartitionerTest, UnknownAttributeFallsBackToEquiWidth) {
  storage::Table t("t");
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("x", {1, 2, 3})));
  const VOptimalPartitioner part = VOptimalPartitioner::FromTable(t, 8);
  const AttributeInfo other{"unrelated", 0, 99, true, 100};
  EXPECT_EQ(part.NumPartitions(other, 8),
            EquiWidthPartitioner::Get().NumPartitions(other, 8));
  EXPECT_EQ(part.IndexOf(other, 8, 50),
            EquiWidthPartitioner::Get().IndexOf(other, 8, 50));
}

// ---------------------------------------------------------------------------
// Singular Predicate Encoding
// ---------------------------------------------------------------------------

TEST(SingularEncodingTest, LayoutMatchesPaperExample) {
  // Section 2.1.1: m = 3, query A > 5 AND B = 7 (A in [-9,50], B in [0,115]).
  const SingularEncoding enc(PaperSchema());
  ASSERT_EQ(enc.dim(), 12);
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kGt, 5);
  AddPredicate(q, 1, CmpOp::kEq, 7);
  const auto vec_or = enc.Featurize(q);
  ASSERT_TRUE(vec_or.ok()) << vec_or.status();
  const std::vector<float>& v = vec_or.value();
  // A: op bits {=,>,<} = 010, literal (5+9)/59.
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], 1.0f);
  EXPECT_EQ(v[2], 0.0f);
  EXPECT_NEAR(v[3], 14.0 / 59.0, 1e-6);
  // B: 100, 7/115.
  EXPECT_EQ(v[4], 1.0f);
  EXPECT_EQ(v[5], 0.0f);
  EXPECT_EQ(v[6], 0.0f);
  EXPECT_NEAR(v[7], 7.0 / 115.0, 1e-6);
  // C: no predicate -> all zero.
  for (int i = 8; i < 12; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], 0.0f);
}

TEST(SingularEncodingTest, CompoundOpsSetTwoBits) {
  const SingularEncoding enc(PaperSchema());
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kGe, 0);
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_EQ(v[0], 1.0f);  // =
  EXPECT_EQ(v[1], 1.0f);  // >
  EXPECT_EQ(v[2], 0.0f);
}

TEST(SingularEncodingTest, DropsSecondPredicatePerAttribute) {
  const SingularEncoding enc(PaperSchema());
  query::Query q1 = SingleTableQuery("t");
  AddCompound(q1, 0, {{{CmpOp::kGe, 10}, {CmpOp::kLe, 40}}});
  query::Query q2 = SingleTableQuery("t");
  AddCompound(q2, 0, {{{CmpOp::kGe, 10}, {CmpOp::kLe, 20}}});
  // Information loss: both queries share a feature vector (only >= 10 kept).
  EXPECT_EQ(enc.Featurize(q1).value(), enc.Featurize(q2).value());
}

TEST(SingularEncodingTest, RejectsDisjunctions) {
  const SingularEncoding enc(PaperSchema());
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0, {{{CmpOp::kLe, 0}}, {{CmpOp::kGe, 40}}});
  EXPECT_EQ(enc.Featurize(q).status().code(),
            common::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Range Predicate Encoding
// ---------------------------------------------------------------------------

TEST(RangeEncodingTest, NoPredicateIsFullDomain) {
  const RangeEncoding enc(PaperSchema());
  ASSERT_EQ(enc.dim(), 6);
  const query::Query q = SingleTableQuery("t");
  const std::vector<float> v = enc.Featurize(q).value();
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(v[static_cast<size_t>(2 * a)], 0.0f);
    EXPECT_EQ(v[static_cast<size_t>(2 * a + 1)], 1.0f);
  }
}

TEST(RangeEncodingTest, ClosedRangeNormalized) {
  const RangeEncoding enc(PaperSchema());
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 1, {{{CmpOp::kGe, 23}, {CmpOp::kLe, 92}}});
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_NEAR(v[2], 23.0 / 115.0, 1e-6);
  EXPECT_NEAR(v[3], 92.0 / 115.0, 1e-6);
}

TEST(RangeEncodingTest, EqualityCollapsesToPoint) {
  const RangeEncoding enc(PaperSchema());
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kEq, 5);
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_NEAR(v[0], 14.0 / 59.0, 1e-6);
  EXPECT_FLOAT_EQ(v[0], v[1]);
}

TEST(RangeEncodingTest, OpenRangesCloseWithIntegralStep) {
  // A < 5 on an integral domain equals [min(A), 4] (Section 3.1).
  const RangeEncoding enc(PaperSchema());
  query::Query q = SingleTableQuery("t");
  AddPredicate(q, 0, CmpOp::kLt, 5);
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_NEAR(v[1], 13.0 / 59.0, 1e-6);
}

TEST(RangeEncodingTest, NotEqualIsDropped) {
  const RangeEncoding enc(PaperSchema());
  query::Query q1 = SingleTableQuery("t");
  AddCompound(q1, 0, {{{CmpOp::kGe, 0}, {CmpOp::kLe, 20}, {CmpOp::kNe, 10}}});
  query::Query q2 = SingleTableQuery("t");
  AddCompound(q2, 0, {{{CmpOp::kGe, 0}, {CmpOp::kLe, 20}}});
  EXPECT_EQ(enc.Featurize(q1).value(), enc.Featurize(q2).value());
}

TEST(RangeEncodingTest, MultipleRangesIntersect) {
  const RangeEncoding enc(PaperSchema());
  query::Query q = SingleTableQuery("t");
  AddCompound(q, 0, {{{CmpOp::kGe, 0},
                      {CmpOp::kGe, 10},
                      {CmpOp::kLe, 45},
                      {CmpOp::kLe, 30}}});
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_NEAR(v[0], 19.0 / 59.0, 1e-6);  // lo = 10
  EXPECT_NEAR(v[1], 39.0 / 59.0, 1e-6);  // hi = 30
}

// ---------------------------------------------------------------------------
// Decorators and global encodings
// ---------------------------------------------------------------------------

TEST(GroupByAppendTest, SetsGroupingBits) {
  auto inner = std::make_unique<RangeEncoding>(PaperSchema());
  const int inner_dim = inner->dim();
  const GroupByAppendFeaturizer enc(std::move(inner), 3);
  ASSERT_EQ(enc.dim(), inner_dim + 3);
  query::Query q = SingleTableQuery("t");
  q.group_by.push_back(query::ColumnRef{0, 1});
  const std::vector<float> v = enc.Featurize(q).value();
  EXPECT_EQ(v[static_cast<size_t>(inner_dim + 0)], 0.0f);
  EXPECT_EQ(v[static_cast<size_t>(inner_dim + 1)], 1.0f);
  EXPECT_EQ(v[static_cast<size_t>(inner_dim + 2)], 0.0f);
}

TEST(FactoryTest, MakesAllKinds) {
  for (const QftKind kind : {QftKind::kSimple, QftKind::kRange,
                             QftKind::kConjunctive, QftKind::kComplex}) {
    const auto f = MakeFeaturizer(kind, PaperSchema());
    ASSERT_NE(f, nullptr);
    EXPECT_GT(f->dim(), 0);
    EXPECT_STREQ(f->name().c_str(), QftKindToString(kind));
  }
}

TEST(GlobalFeaturizerTest, AppendsTableBitmap) {
  workload::ImdbOptions opts;
  opts.num_titles = 200;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  const GlobalFeatureSchema global =
      GlobalFeatureSchema::FromCatalog(db.catalog);
  auto inner = std::make_unique<RangeEncoding>(global.schema());
  const int inner_dim = inner->dim();
  const GlobalFeaturizer enc(&db.catalog, std::move(inner));
  ASSERT_EQ(enc.dim(), inner_dim + db.catalog.num_tables());

  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  q.tables.push_back(query::TableRef{"cast_info", "cast_info"});
  QFCARD_CHECK_OK(db.graph.PopulateJoins(db.catalog, q));
  const std::vector<float> v = enc.Featurize(q).value();
  const int title_idx = db.catalog.TableIndex("title").value();
  const int ci_idx = db.catalog.TableIndex("cast_info").value();
  const int mi_idx = db.catalog.TableIndex("movie_info").value();
  EXPECT_EQ(v[static_cast<size_t>(inner_dim + title_idx)], 1.0f);
  EXPECT_EQ(v[static_cast<size_t>(inner_dim + ci_idx)], 1.0f);
  EXPECT_EQ(v[static_cast<size_t>(inner_dim + mi_idx)], 0.0f);
}

TEST(GlobalFeaturizerTest, PredicatesMapToGlobalAttributeSlots) {
  // Two tiny tables; a predicate on the second table must land in the
  // second table's block of the global conjunction encoding.
  storage::Catalog cat;
  storage::Table a("a");
  QFCARD_CHECK_OK(a.AddColumn(testutil::IntColumn("x", {0, 1, 2, 3})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(a)));
  storage::Table b("b");
  QFCARD_CHECK_OK(b.AddColumn(testutil::IntColumn("y", {0, 1, 2, 3})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(b)));

  const GlobalFeatureSchema global = GlobalFeatureSchema::FromCatalog(cat);
  ASSERT_EQ(global.schema().num_attributes(), 2);
  EXPECT_EQ(global.schema().attr(0).name, "a.x");
  EXPECT_EQ(global.schema().attr(1).name, "b.y");
  EXPECT_EQ(global.GlobalIndex(1, 0).value(), 1);

  ConjunctionOptions opts;
  opts.max_partitions = 4;
  opts.append_attr_selectivity = false;
  const GlobalFeaturizer enc(
      &cat,
      std::make_unique<ConjunctionEncoding>(global.schema(), opts));
  // Query over only table b, with b.y = 2.
  query::Query q;
  q.tables.push_back(query::TableRef{"b", "b"});
  testutil::AddPredicate(q, 0, CmpOp::kEq, 2);
  const std::vector<float> v = enc.Featurize(q).value();
  // Block 0 (a.x, 4 entries, untouched) all ones.
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(v[static_cast<size_t>(i)], 1.0f);
  // Block 1 (b.y): exact small-domain equality keeps only entry 2.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(v[static_cast<size_t>(4 + i)], i == 2 ? 1.0f : 0.0f);
  }
  // Table bitmap: only b set.
  EXPECT_FLOAT_EQ(v[8], 0.0f);
  EXPECT_FLOAT_EQ(v[9], 1.0f);
}

TEST(MscnFeaturizerTest, SetShapes) {
  workload::ImdbOptions opts;
  opts.num_titles = 200;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  const MscnFeaturizer feat(&db.catalog, &db.graph,
                            MscnFeaturizer::PredMode::kPerPredicate);
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  q.tables.push_back(query::TableRef{"movie_keyword", "movie_keyword"});
  QFCARD_CHECK_OK(db.graph.PopulateJoins(db.catalog, q));
  // Two predicates on one attribute -> two per-predicate vectors.
  const storage::Table& title = *db.catalog.GetTable("title").value();
  const int year = title.ColumnIndex("production_year").value();
  testutil::AddCompound(q, year, {{{CmpOp::kGe, 1990}, {CmpOp::kLe, 2000}}});
  const auto sample_or = feat.Featurize(q);
  ASSERT_TRUE(sample_or.ok()) << sample_or.status();
  const MscnSample& s = sample_or.value();
  EXPECT_EQ(s.table_vecs.size(), 2u);
  EXPECT_EQ(s.join_vecs.size(), 1u);
  EXPECT_EQ(s.pred_vecs.size(), 2u);
  EXPECT_EQ(static_cast<int>(s.pred_vecs[0].size()), feat.pred_dim());
}

TEST(MscnFeaturizerTest, PerAttributeModeMergesPredicates) {
  workload::ImdbOptions opts;
  opts.num_titles = 200;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  ConjunctionOptions copts;
  copts.max_partitions = 8;
  const MscnFeaturizer feat(&db.catalog, &db.graph,
                            MscnFeaturizer::PredMode::kPerAttributeQft, copts);
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  const storage::Table& title = *db.catalog.GetTable("title").value();
  const int year = title.ColumnIndex("production_year").value();
  testutil::AddCompound(q, year, {{{CmpOp::kGe, 1990}, {CmpOp::kLe, 2000}}});
  const MscnSample s = feat.Featurize(q).value();
  EXPECT_EQ(s.pred_vecs.size(), 1u);  // one vector per attribute
  EXPECT_TRUE(s.join_vecs.empty());
}

TEST(MscnFeaturizerTest, PerPredicateModeRejectsDisjunctions) {
  workload::ImdbOptions opts;
  opts.num_titles = 200;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  const MscnFeaturizer feat(&db.catalog, &db.graph,
                            MscnFeaturizer::PredMode::kPerPredicate);
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  const storage::Table& title = *db.catalog.GetTable("title").value();
  const int year = title.ColumnIndex("production_year").value();
  testutil::AddCompound(q, year,
                        {{{CmpOp::kLe, 1950}}, {{CmpOp::kGe, 2000}}});
  EXPECT_EQ(feat.Featurize(q).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(MscnFeaturizerTest, UnknownJoinEdgeIsNotFound) {
  workload::ImdbOptions opts;
  opts.num_titles = 100;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  query::SchemaGraph empty_graph;  // featurizer knows no edges
  const MscnFeaturizer feat(&db.catalog, &empty_graph,
                            MscnFeaturizer::PredMode::kPerPredicate);
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  q.tables.push_back(query::TableRef{"cast_info", "cast_info"});
  QFCARD_CHECK_OK(db.graph.PopulateJoins(db.catalog, q));
  EXPECT_EQ(feat.Featurize(q).status().code(),
            common::StatusCode::kNotFound);
}

TEST(GroupByAppendTest, RejectsOutOfRangeGroupingAttribute) {
  auto inner = std::make_unique<RangeEncoding>(FeatureSchema(
      {std::vector<AttributeInfo>{AttributeInfo{"x", 0, 9, true, 10}}}));
  const GroupByAppendFeaturizer enc(std::move(inner), 1);
  query::Query q = testutil::SingleTableQuery("t");
  q.group_by.push_back(query::ColumnRef{0, 5});
  EXPECT_EQ(enc.Featurize(q).status().code(),
            common::StatusCode::kOutOfRange);
}

TEST(MscnFeaturizerTest, PerAttributeRangeMode) {
  workload::ImdbOptions opts;
  opts.num_titles = 200;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  const MscnFeaturizer feat(&db.catalog, &db.graph,
                            MscnFeaturizer::PredMode::kPerAttributeRange);
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  const storage::Table& title = *db.catalog.GetTable("title").value();
  const int year = title.ColumnIndex("production_year").value();
  testutil::AddCompound(q, year, {{{CmpOp::kGe, 1990}, {CmpOp::kLe, 2000}}});
  const MscnSample s = feat.Featurize(q).value();
  ASSERT_EQ(s.pred_vecs.size(), 1u);
  const GlobalFeatureSchema global = GlobalFeatureSchema::FromCatalog(db.catalog);
  const int num_attrs = global.schema().num_attributes();
  const float lo = s.pred_vecs[0][static_cast<size_t>(num_attrs)];
  const float hi = s.pred_vecs[0][static_cast<size_t>(num_attrs) + 1];
  EXPECT_GT(hi, lo);
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
  // Disjunctions are rejected in this mode.
  query::Query disj;
  disj.tables.push_back(query::TableRef{"title", "title"});
  testutil::AddCompound(disj, year, {{{CmpOp::kLe, 1950}}, {{CmpOp::kGe, 2000}}});
  EXPECT_FALSE(feat.Featurize(disj).ok());
}

TEST(MscnFeaturizerTest, PerAttributeModeSupportsDisjunctions) {
  workload::ImdbOptions opts;
  opts.num_titles = 200;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(opts);
  const MscnFeaturizer feat(&db.catalog, &db.graph,
                            MscnFeaturizer::PredMode::kPerAttributeQft);
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  const storage::Table& title = *db.catalog.GetTable("title").value();
  const int year = title.ColumnIndex("production_year").value();
  testutil::AddCompound(q, year,
                        {{{CmpOp::kLe, 1950}}, {{CmpOp::kGe, 2000}}});
  EXPECT_TRUE(feat.Featurize(q).ok());
}

}  // namespace
}  // namespace qfcard::featurize
