#include "serve/fss.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "query/query.h"
#include "test_util.h"

// Feature-space hash tests (src/serve/fss.h): a pinned corpus of mixed
// predicate shapes — the hash is the router's persistent route id, so its
// values must never drift across refactors, platforms, or processes — plus
// the structural guarantees: invariance under clause/predicate/join/table
// reordering and literal changes, sensitivity to everything else.

namespace qfcard::serve {
namespace {

using query::CmpOp;

// --- Corpus builders -------------------------------------------------------

query::Query EqualityQuery(double v = 5.0) {
  query::Query q = testutil::SingleTableQuery("small");
  testutil::AddPredicate(q, 0, CmpOp::kEq, v);
  return q;
}

query::Query RangeQuery(double lo = 2.0, double hi = 8.0) {
  query::Query q = testutil::SingleTableQuery("small");
  testutil::AddCompound(q, 0, {{{CmpOp::kGe, lo}, {CmpOp::kLe, hi}}});
  return q;
}

query::Query InListQuery() {
  query::Query q = testutil::SingleTableQuery("small");
  testutil::AddCompound(q, 1, {{{CmpOp::kEq, 10.0}},
                               {{CmpOp::kEq, 30.0}},
                               {{CmpOp::kEq, 50.0}}});
  return q;
}

/// A mixed disjunction (range-clause OR point-clause) next to a simple
/// predicate on another attribute.
query::Query MixedQuery() {
  query::Query q = testutil::SingleTableQuery("small");
  testutil::AddCompound(q, 0, {{{CmpOp::kGe, 2.0}, {CmpOp::kLe, 4.0}},
                               {{CmpOp::kEq, 7.0}}});
  testutil::AddPredicate(q, 1, CmpOp::kGe, 20.0);
  return q;
}

query::Query JoinQuery() {
  query::Query q;
  q.tables.push_back(query::TableRef{"orders", "o"});
  q.tables.push_back(query::TableRef{"lineitem", "l"});
  q.joins.push_back(
      query::JoinPredicate{query::ColumnRef{0, 0}, query::ColumnRef{1, 1}});
  query::CompoundPredicate cp;
  cp.col = query::ColumnRef{1, 2};
  query::ConjunctiveClause clause;
  clause.preds.push_back(
      query::SimplePredicate{cp.col, CmpOp::kLt, 100.0});
  cp.disjuncts.push_back(std::move(clause));
  q.predicates.push_back(std::move(cp));
  return q;
}

query::Query GroupByQuery() {
  query::Query q = EqualityQuery();
  q.group_by.push_back(query::ColumnRef{0, 1});
  return q;
}

// --- Pinned corpus ---------------------------------------------------------
// These values are the on-the-wire route ids. If one of these expectations
// fails, the hash function changed and every persisted route id (metrics
// labels, logs, saved route tables) silently remaps — treat that as an
// incompatible change, not a test to update casually.

TEST(FeatureSpaceHash, PinnedCorpus) {
  EXPECT_EQ(FeatureSpaceHash(EqualityQuery()), 0xac1093503a66a935ull);
  EXPECT_EQ(FeatureSpaceHash(RangeQuery()), 0xb96febe4e7175ddcull);
  EXPECT_EQ(FeatureSpaceHash(InListQuery()), 0xeef84f73d8059412ull);
  EXPECT_EQ(FeatureSpaceHash(MixedQuery()), 0x102fe2f9b1f63f95ull);
  EXPECT_EQ(FeatureSpaceHash(JoinQuery()), 0x0e1f7a27e16eaf7cull);
  EXPECT_EQ(FeatureSpaceHash(GroupByQuery()), 0xbe3f240b0e9f1e3aull);
}

TEST(FeatureSpaceHash, NeverReturnsTheSentinel) {
  // 0 is reserved for "no route hint"; even the empty query hashes off it.
  EXPECT_NE(FeatureSpaceHash(query::Query{}), 0u);
}

// --- Literal insensitivity (the defining property of a feature space) ------

TEST(FeatureSpaceHash, IgnoresLiteralValues) {
  EXPECT_EQ(FeatureSpaceHash(EqualityQuery(5.0)),
            FeatureSpaceHash(EqualityQuery(-3.25)));
  EXPECT_EQ(FeatureSpaceHash(RangeQuery(2.0, 8.0)),
            FeatureSpaceHash(RangeQuery(500.0, 501.0)));
}

// --- Order invariance ------------------------------------------------------

TEST(FeatureSpaceHash, InvariantUnderPredicateOrder) {
  query::Query ab = testutil::SingleTableQuery("small");
  testutil::AddPredicate(ab, 0, CmpOp::kLe, 4.0);
  testutil::AddPredicate(ab, 1, CmpOp::kGe, 20.0);
  query::Query ba = testutil::SingleTableQuery("small");
  testutil::AddPredicate(ba, 1, CmpOp::kGe, 20.0);
  testutil::AddPredicate(ba, 0, CmpOp::kLe, 4.0);
  EXPECT_EQ(FeatureSpaceHash(ab), FeatureSpaceHash(ba));
  EXPECT_EQ(FeatureSpaceSignature(ab), FeatureSpaceSignature(ba));
}

TEST(FeatureSpaceHash, InvariantUnderOperatorOrderWithinClause) {
  query::Query fwd = testutil::SingleTableQuery("small");
  testutil::AddCompound(fwd, 0, {{{CmpOp::kGe, 2.0}, {CmpOp::kLe, 8.0}}});
  query::Query rev = testutil::SingleTableQuery("small");
  testutil::AddCompound(rev, 0, {{{CmpOp::kLe, 8.0}, {CmpOp::kGe, 2.0}}});
  EXPECT_EQ(FeatureSpaceHash(fwd), FeatureSpaceHash(rev));
}

TEST(FeatureSpaceHash, InvariantUnderDisjunctOrder) {
  query::Query fwd = testutil::SingleTableQuery("small");
  testutil::AddCompound(fwd, 0, {{{CmpOp::kGe, 2.0}, {CmpOp::kLe, 4.0}},
                                 {{CmpOp::kEq, 7.0}}});
  query::Query rev = testutil::SingleTableQuery("small");
  testutil::AddCompound(rev, 0, {{{CmpOp::kEq, 7.0}},
                                 {{CmpOp::kGe, 2.0}, {CmpOp::kLe, 4.0}}});
  EXPECT_EQ(FeatureSpaceHash(fwd), FeatureSpaceHash(rev));
  EXPECT_EQ(FeatureSpaceSignature(fwd), FeatureSpaceSignature(rev));
}

TEST(FeatureSpaceHash, InvariantUnderJoinDirectionAndTableOrder) {
  const query::Query fwd = JoinQuery();

  // Same join written right-to-left.
  query::Query flipped = fwd;
  std::swap(flipped.joins[0].left, flipped.joins[0].right);
  EXPECT_EQ(FeatureSpaceHash(fwd), FeatureSpaceHash(flipped));

  // Same query with the FROM order reversed: ColumnRef.table indices
  // renumber, but identity follows table *names*, so the space is the same.
  query::Query reordered;
  reordered.tables.push_back(query::TableRef{"lineitem", "l"});
  reordered.tables.push_back(query::TableRef{"orders", "o"});
  reordered.joins.push_back(
      query::JoinPredicate{query::ColumnRef{1, 0}, query::ColumnRef{0, 1}});
  query::CompoundPredicate cp;
  cp.col = query::ColumnRef{0, 2};
  query::ConjunctiveClause clause;
  clause.preds.push_back(query::SimplePredicate{cp.col, CmpOp::kLt, 999.0});
  cp.disjuncts.push_back(std::move(clause));
  reordered.predicates.push_back(std::move(cp));
  EXPECT_EQ(FeatureSpaceHash(fwd), FeatureSpaceHash(reordered));
  EXPECT_EQ(FeatureSpaceSignature(fwd), FeatureSpaceSignature(reordered));
}

// --- Structure sensitivity -------------------------------------------------

TEST(FeatureSpaceHash, DistinguishesOperators) {
  query::Query ge = testutil::SingleTableQuery("small");
  testutil::AddPredicate(ge, 0, CmpOp::kGe, 5.0);
  query::Query gt = testutil::SingleTableQuery("small");
  testutil::AddPredicate(gt, 0, CmpOp::kGt, 5.0);
  EXPECT_NE(FeatureSpaceHash(ge), FeatureSpaceHash(gt));
  EXPECT_NE(FeatureSpaceHash(ge), FeatureSpaceHash(EqualityQuery(5.0)));
}

TEST(FeatureSpaceHash, DistinguishesColumnsTablesAndArity) {
  query::Query col0 = testutil::SingleTableQuery("small");
  testutil::AddPredicate(col0, 0, CmpOp::kEq, 5.0);
  query::Query col1 = testutil::SingleTableQuery("small");
  testutil::AddPredicate(col1, 1, CmpOp::kEq, 5.0);
  EXPECT_NE(FeatureSpaceHash(col0), FeatureSpaceHash(col1));

  query::Query other_table = testutil::SingleTableQuery("large");
  testutil::AddPredicate(other_table, 0, CmpOp::kEq, 5.0);
  EXPECT_NE(FeatureSpaceHash(col0), FeatureSpaceHash(other_table));

  // IN-lists of different lengths are different shapes (one model per
  // feature-vector layout).
  query::Query in2 = testutil::SingleTableQuery("small");
  testutil::AddCompound(in2, 1, {{{CmpOp::kEq, 10.0}}, {{CmpOp::kEq, 30.0}}});
  EXPECT_NE(FeatureSpaceHash(InListQuery()), FeatureSpaceHash(in2));

  EXPECT_NE(FeatureSpaceHash(EqualityQuery()),
            FeatureSpaceHash(GroupByQuery()));
}

// --- Formatting ------------------------------------------------------------

TEST(FeatureSpaceHash, FormatFssIsSixteenLowercaseHexDigits) {
  EXPECT_EQ(FormatFss(0x3f62a91c0b44d17eull), "3f62a91c0b44d17e");
  EXPECT_EQ(FormatFss(0x1ull), "0000000000000001");
}

TEST(FeatureSpaceHash, SignatureReadsLikeTheShape) {
  EXPECT_EQ(FeatureSpaceSignature(RangeQuery()), "small|small.c0:{<=,>=}");
  EXPECT_EQ(FeatureSpaceSignature(InListQuery()),
            "small|small.c1:{=}+{=}+{=}");
  EXPECT_EQ(FeatureSpaceSignature(JoinQuery()),
            "lineitem,orders|lineitem.c1=orders.c0|lineitem.c2:{<}");
}

}  // namespace
}  // namespace qfcard::serve
