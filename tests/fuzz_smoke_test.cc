// Time-budgeted fuzz smoke test: runs the full differential/metamorphic
// fuzzer (src/testing/query_fuzzer.h) at its default fixed seed — at least
// 2000 generated queries, with batch/serial parity checked at 1, 2, and 8
// threads — and fails with the minimized reproducers if any check is
// violated. On failure the report is also written to
// $QFCARD_FUZZ_ARTIFACT (or ./fuzz_repro.txt) so CI can upload it.

#include "testing/query_fuzzer.h"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace qfcard::testing {
namespace {

void WriteArtifactOnFailure(const FuzzReport& report) {
  if (report.ok()) return;
  const char* env = std::getenv("QFCARD_FUZZ_ARTIFACT");
  const std::string path = env != nullptr ? env : "fuzz_repro.txt";
  std::ofstream out(path);
  if (out) out << report.Summary();
}

TEST(FuzzSmokeTest, DefaultSeedRunsCleanWithParityAcrossPoolSizes) {
  FuzzOptions options;  // fixed default seed: deterministic run
  ASSERT_EQ(options.parity_threads, (std::vector<int>{1, 2, 8}));

  const FuzzReport report = RunFuzzer(options);
  WriteArtifactOnFailure(report);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.rounds, options.rounds);
  EXPECT_GE(report.queries, 2000) << "smoke budget requires >= 2000 queries";
  EXPECT_GT(report.checks, report.queries) << "several checks per query";
}

TEST(FuzzSmokeTest, SecondSeedAlsoClean) {
  FuzzOptions options;
  options.seed = 0x5eed2;
  options.rounds = 10;
  const FuzzReport report = RunFuzzer(options);
  WriteArtifactOnFailure(report);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.rounds, 10);
}

TEST(FuzzSmokeTest, ReplayRunsExactlyOneRound) {
  FuzzOptions options;
  options.replay_round = 7;
  const FuzzReport report = RunFuzzer(options);
  EXPECT_EQ(report.rounds, 1);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FuzzSmokeTest, DeterministicAcrossRuns) {
  FuzzOptions options;
  options.rounds = 3;
  const FuzzReport a = RunFuzzer(options);
  const FuzzReport b = RunFuzzer(options);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.Summary(), b.Summary());
}

}  // namespace
}  // namespace qfcard::testing
