// Time-budgeted fuzz smoke test: runs the full differential/metamorphic
// fuzzer (src/testing/query_fuzzer.h) at its default fixed seed — at least
// 2000 generated queries, with batch/serial parity checked at 1, 2, and 8
// threads — and fails with the minimized reproducers if any check is
// violated. On failure the report is also written to
// $QFCARD_FUZZ_ARTIFACT (or ./fuzz_repro.txt) so CI can upload it.

#include "testing/query_fuzzer.h"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "adapt/adapt_fuzz.h"
#include "estimators/registry.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/bundle_fuzz.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "testing/shrink.h"

namespace qfcard::testing {
namespace {

// The loader and adaptive rounds live above testing/ in the layer order, so
// fuzz binaries opt in explicitly (serve/bundle_fuzz.h,
// adapt/adapt_fuzz.h). Without this the fuzzer would silently substitute
// forest rounds and those checks would never run.
const bool kExtensionRoundsInstalled = [] {
  serve::RegisterLoaderFuzzRound();
  adapt::RegisterAdaptiveFuzzRound();
  return true;
}();

void WriteArtifactOnFailure(const FuzzReport& report) {
  if (report.ok()) return;
  const char* env = std::getenv("QFCARD_FUZZ_ARTIFACT");
  const std::string path = env != nullptr ? env : "fuzz_repro.txt";
  std::ofstream out(path);
  if (out) out << report.Summary();
}

TEST(FuzzSmokeTest, DefaultSeedRunsCleanWithParityAcrossPoolSizes) {
  FuzzOptions options;  // fixed default seed: deterministic run
  ASSERT_EQ(options.parity_threads, (std::vector<int>{1, 2, 8}));

  const FuzzReport report = RunFuzzer(options);
  WriteArtifactOnFailure(report);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.rounds, options.rounds);
  EXPECT_GE(report.queries, 2000) << "smoke budget requires >= 2000 queries";
  EXPECT_GT(report.checks, report.queries) << "several checks per query";
}

TEST(FuzzSmokeTest, SecondSeedAlsoClean) {
  FuzzOptions options;
  options.seed = 0x5eed2;
  options.rounds = 10;
  const FuzzReport report = RunFuzzer(options);
  WriteArtifactOnFailure(report);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.rounds, 10);
}

TEST(FuzzSmokeTest, ReplayRunsExactlyOneRound) {
  FuzzOptions options;
  options.replay_round = 7;
  const FuzzReport report = RunFuzzer(options);
  EXPECT_EQ(report.rounds, 1);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Sums a named counter across its label sets in the global registry.
uint64_t GlobalCounterValue(const std::string& name,
                            const std::string& labels) {
  uint64_t total = 0;
  for (const obs::MetricsRegistry::CounterRow& row :
       obs::MetricsRegistry::Global().CounterRows()) {
    if (row.name == name && row.labels == labels) total += row.value;
  }
  return total;
}

// Error paths are telemetry too (docs/observability.md): registry failures
// and the shrink loop must leave an audit trail in the counters, so a fleet
// quietly rejecting estimator configs — or a fuzzer stuck shrinking — shows
// up in snapshots instead of only in stderr.
TEST(FuzzSmokeTest, ErrorPathsIncrementFailureCounters) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().ResetForTest();
  const storage::Catalog catalog = testutil::SmallCatalog();

  // Each registry error kind bumps its own labeled counter.
  EXPECT_FALSE(est::MakeEstimator("definitely-not-a-model", catalog).ok());
  EXPECT_EQ(GlobalCounterValue("registry.errors", "kind=unknown-estimator"),
            1u);
  EXPECT_FALSE(est::MakeEstimator("gb+not-a-qft", catalog).ok());
  EXPECT_EQ(GlobalCounterValue("registry.errors", "kind=unknown-qft"), 1u);
  EXPECT_FALSE(est::MakeEstimator("frobnicator+complex", catalog).ok());
  EXPECT_EQ(GlobalCounterValue("registry.errors", "kind=unknown-model"), 1u);
  EXPECT_FALSE(
      est::MakeEstimator("gb+complex", storage::Catalog()).ok());
  EXPECT_EQ(GlobalCounterValue("registry.errors", "kind=bad-catalog"), 1u);

  // The shrink loop counts every candidate it evaluates.
  query::Query q = testutil::SingleTableQuery("small");
  testutil::AddPredicate(q, 0, query::CmpOp::kGe, 2);
  testutil::AddPredicate(q, 1, query::CmpOp::kLe, 90);
  const query::Query minimal =
      ShrinkQuery(q, [](const query::Query&) { return true; });
  EXPECT_GT(GlobalCounterValue("fuzz.shrink_candidates", ""), 0u);
  EXPECT_LE(minimal.predicates.size(), q.predicates.size());

  // Gating: with metrics off the same failures leave no trace.
  obs::MetricsRegistry::Global().ResetForTest();
  obs::SetMetricsEnabled(false);
  EXPECT_FALSE(est::MakeEstimator("definitely-not-a-model", catalog).ok());
  EXPECT_EQ(GlobalCounterValue("registry.errors", "kind=unknown-estimator"),
            0u);
}

TEST(FuzzSmokeTest, DeterministicAcrossRuns) {
  FuzzOptions options;
  options.rounds = 3;
  const FuzzReport a = RunFuzzer(options);
  const FuzzReport b = RunFuzzer(options);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.Summary(), b.Summary());
}

}  // namespace
}  // namespace qfcard::testing
