#include "ml/gbm.h"

#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace qfcard::ml {
namespace {

TEST(BinnedFeaturesTest, CodesAreMonotoneInValue) {
  common::Rng rng(1);
  Matrix x(200, 1);
  for (int r = 0; r < 200; ++r) x.At(r, 0) = static_cast<float>(rng.Uniform(0, 100));
  const BinnedFeatures binned = BinnedFeatures::Build(x, 16);
  EXPECT_EQ(binned.num_rows(), 200);
  EXPECT_EQ(binned.num_features(), 1);
  EXPECT_LE(binned.NumBins(0), 16);
  EXPECT_GE(binned.NumBins(0), 2);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 200; ++j) {
      if (x.At(i, 0) < x.At(j, 0)) {
        EXPECT_LE(binned.Code(0, i), binned.Code(0, j));
      }
    }
  }
}

TEST(BinnedFeaturesTest, ThresholdsSeparateBins) {
  Matrix x(6, 1);
  const float values[6] = {1, 1, 2, 2, 3, 3};
  for (int r = 0; r < 6; ++r) x.At(r, 0) = values[r];
  const BinnedFeatures binned = BinnedFeatures::Build(x, 4);
  // Rows with x <= Threshold(0, b) have codes <= b.
  for (int b = 0; b + 1 < binned.NumBins(0); ++b) {
    const float th = binned.Threshold(0, b);
    for (int r = 0; r < 6; ++r) {
      if (x.At(r, 0) <= th) {
        EXPECT_LE(binned.Code(0, r), b);
      } else {
        EXPECT_GT(binned.Code(0, r), b);
      }
    }
  }
}

TEST(BinnedFeaturesTest, ConstantColumnHasOneBin) {
  Matrix x(10, 1);
  for (int r = 0; r < 10; ++r) x.At(r, 0) = 5.0f;
  const BinnedFeatures binned = BinnedFeatures::Build(x, 8);
  EXPECT_EQ(binned.NumBins(0), 1);
}

TEST(RegressionTreeTest, FitsStepFunctionExactly) {
  Matrix x(100, 1);
  std::vector<float> y(100);
  std::vector<int> rows(100);
  for (int r = 0; r < 100; ++r) {
    x.At(r, 0) = static_cast<float>(r);
    y[static_cast<size_t>(r)] = r < 50 ? -1.0f : 3.0f;
    rows[static_cast<size_t>(r)] = r;
  }
  const BinnedFeatures binned = BinnedFeatures::Build(x, 32);
  RegressionTree tree;
  RegressionTree::Params params;
  params.max_depth = 2;
  params.min_samples_leaf = 5;
  tree.Fit(binned, y, rows, params, nullptr);
  const float lo = 10.0f;
  const float hi = 80.0f;
  EXPECT_FLOAT_EQ(tree.Predict(&lo), -1.0f);
  EXPECT_FLOAT_EQ(tree.Predict(&hi), 3.0f);
  EXPECT_GT(tree.SizeBytes(), 0u);
}

TEST(RegressionTreeTest, DepthZeroPredictsMean) {
  Matrix x(4, 1);
  std::vector<float> y{1, 2, 3, 4};
  std::vector<int> rows{0, 1, 2, 3};
  for (int r = 0; r < 4; ++r) x.At(r, 0) = static_cast<float>(r);
  const BinnedFeatures binned = BinnedFeatures::Build(x, 8);
  RegressionTree tree;
  RegressionTree::Params params;
  params.max_depth = 0;
  params.min_samples_leaf = 1;
  tree.Fit(binned, y, rows, params, nullptr);
  const float v = 2.0f;
  EXPECT_FLOAT_EQ(tree.Predict(&v), 2.5f);
}

TEST(RegressionTreeTest, RespectsMinSamplesLeaf) {
  Matrix x(10, 1);
  std::vector<float> y(10);
  std::vector<int> rows(10);
  for (int r = 0; r < 10; ++r) {
    x.At(r, 0) = static_cast<float>(r);
    y[static_cast<size_t>(r)] = static_cast<float>(r);
    rows[static_cast<size_t>(r)] = r;
  }
  const BinnedFeatures binned = BinnedFeatures::Build(x, 32);
  RegressionTree tree;
  RegressionTree::Params params;
  params.max_depth = 10;
  params.min_samples_leaf = 6;  // 2 * 6 > 10 -> no split possible
  tree.Fit(binned, y, rows, params, nullptr);
  EXPECT_EQ(tree.nodes().size(), 1u);
}

Dataset MakeAdditiveDataset(int n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.Uniform(0, 1));
    const float b = static_cast<float>(rng.Uniform(0, 1));
    const float c = static_cast<float>(rng.Uniform(0, 1));
    xs.push_back({a, b, c});
    ys.push_back(4.0f * a + std::sin(6.28f * b) + 0.5f * c * c);
  }
  return Dataset::FromVectors(xs, ys).value();
}

TEST(GradientBoostingTest, LearnsAdditiveFunction) {
  const Dataset train = MakeAdditiveDataset(2000, 31);
  const Dataset test = MakeAdditiveDataset(300, 32);
  GbmParams params;
  params.num_trees = 120;
  params.learning_rate = 0.1;
  params.max_depth = 4;
  params.min_samples_leaf = 10;
  params.early_stopping_rounds = 0;
  GradientBoosting model(params);
  ASSERT_TRUE(model.Fit(train, nullptr).ok());
  const double rmse = Rmse(model.PredictBatch(test.x), test.y);
  EXPECT_LT(rmse, 0.25);
  // Far better than predicting the mean (label sd is ~1.3).
  EXPECT_GT(model.num_trees(), 50);
}

TEST(GradientBoostingTest, MoreTreesReduceTrainError) {
  const Dataset train = MakeAdditiveDataset(1000, 33);
  GbmParams small;
  small.num_trees = 10;
  small.early_stopping_rounds = 0;
  GbmParams large = small;
  large.num_trees = 100;
  GradientBoosting m_small(small);
  GradientBoosting m_large(large);
  ASSERT_TRUE(m_small.Fit(train, nullptr).ok());
  ASSERT_TRUE(m_large.Fit(train, nullptr).ok());
  EXPECT_LT(Rmse(m_large.PredictBatch(train.x), train.y),
            Rmse(m_small.PredictBatch(train.x), train.y));
}

TEST(GradientBoostingTest, EarlyStoppingTruncates) {
  const Dataset train = MakeAdditiveDataset(800, 34);
  const Dataset valid = MakeAdditiveDataset(200, 35);
  GbmParams params;
  params.num_trees = 400;
  params.learning_rate = 0.3;
  params.early_stopping_rounds = 5;
  GradientBoosting model(params);
  ASSERT_TRUE(model.Fit(train, &valid).ok());
  EXPECT_LT(model.num_trees(), 400);
}

TEST(GradientBoostingTest, EmptyTrainingSetRejected) {
  Dataset empty;
  GradientBoosting model;
  EXPECT_FALSE(model.Fit(empty, nullptr).ok());
}

TEST(GradientBoostingTest, ConstantLabelsPredictConstant) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back({static_cast<float>(i)});
    ys.push_back(7.0f);
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  GradientBoosting model;
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  const float x = 50.0f;
  EXPECT_NEAR(model.Predict(&x), 7.0f, 1e-4);
}

TEST(GradientBoostingTest, SubsampleAndColsampleStillLearn) {
  const Dataset train = MakeAdditiveDataset(1500, 36);
  GbmParams params;
  params.num_trees = 150;
  params.subsample = 0.7;
  params.colsample = 0.7;
  params.early_stopping_rounds = 0;
  GradientBoosting model(params);
  ASSERT_TRUE(model.Fit(train, nullptr).ok());
  EXPECT_LT(Rmse(model.PredictBatch(train.x), train.y), 0.35);
}

TEST(GradientBoostingTest, SerializationRoundTrip) {
  const Dataset train = MakeAdditiveDataset(600, 40);
  GbmParams params;
  params.num_trees = 40;
  params.learning_rate = 0.17;
  params.early_stopping_rounds = 0;
  GradientBoosting model(params);
  ASSERT_TRUE(model.Fit(train, nullptr).ok());

  std::vector<uint8_t> blob;
  ASSERT_TRUE(model.Serialize(&blob).ok());
  EXPECT_GT(blob.size(), 100u);

  GradientBoosting restored;  // default hyperparameters differ on purpose
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  EXPECT_EQ(restored.num_trees(), model.num_trees());
  for (int i = 0; i < train.num_rows(); i += 37) {
    EXPECT_FLOAT_EQ(restored.Predict(train.x.Row(i)),
                    model.Predict(train.x.Row(i)));
  }
}

TEST(GradientBoostingTest, DeserializeRejectsGarbage) {
  GradientBoosting model;
  EXPECT_FALSE(model.Deserialize({1, 2, 3}).ok());
  std::vector<uint8_t> wrong_magic(16, 0);
  EXPECT_FALSE(model.Deserialize(wrong_magic).ok());
}

TEST(GradientBoostingTest, DeterministicForFixedSeed) {
  const Dataset train = MakeAdditiveDataset(500, 37);
  GbmParams params;
  params.num_trees = 30;
  params.subsample = 0.8;
  params.seed = 5;
  params.early_stopping_rounds = 0;
  GradientBoosting m1(params);
  GradientBoosting m2(params);
  ASSERT_TRUE(m1.Fit(train, nullptr).ok());
  ASSERT_TRUE(m2.Fit(train, nullptr).ok());
  const float x[3] = {0.2f, 0.4f, 0.6f};
  EXPECT_FLOAT_EQ(m1.Predict(x), m2.Predict(x));
}

}  // namespace
}  // namespace qfcard::ml
