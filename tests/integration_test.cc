// End-to-end integration tests reproducing the paper's headline finding at
// miniature scale: with GB as the model, Universal Conjunction Encoding
// yields materially better estimates than Singular Predicate Encoding on a
// multi-predicate conjunctive workload, and Limited Disjunction Encoding
// handles the mixed workload.

#include "eval/harness.h"
#include "eval/summary.h"
#include "featurize/extensions.h"
#include "gtest/gtest.h"
#include "ml/gbm.h"
#include "query/executor.h"
#include "query/normalize.h"
#include "workload/forest.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::ForestOptions fopts;
    fopts.num_rows = 8000;
    fopts.num_attributes = 8;
    fopts.seed = 71;
    table_ = new storage::Table(workload::MakeForestTable(fopts));

    common::Rng rng(73);
    const std::vector<query::Query> conj_queries =
        workload::GeneratePredicateWorkload(
            *table_, 1600, workload::ConjunctiveWorkloadOptions(6), rng);
    conj_ = new std::vector<workload::LabeledQuery>(
        workload::LabelOnTable(*table_, conj_queries, true).value());

    const std::vector<query::Query> mixed_queries =
        workload::GeneratePredicateWorkload(
            *table_, 1200, workload::MixedWorkloadOptions(6), rng);
    mixed_ = new std::vector<workload::LabeledQuery>(
        workload::LabelOnTable(*table_, mixed_queries, true).value());
  }

  static void TearDownTestSuite() {
    delete table_;
    delete conj_;
    delete mixed_;
    table_ = nullptr;
    conj_ = nullptr;
    mixed_ = nullptr;
  }

  static std::pair<std::vector<workload::LabeledQuery>,
                   std::vector<workload::LabeledQuery>>
  Split(const std::vector<workload::LabeledQuery>& all, size_t n_test) {
    std::vector<workload::LabeledQuery> train(all.begin(),
                                              all.end() - static_cast<long>(n_test));
    std::vector<workload::LabeledQuery> test(all.end() - static_cast<long>(n_test),
                                             all.end());
    return {std::move(train), std::move(test)};
  }

  static ml::GbmParams FastGbm() {
    ml::GbmParams params;
    params.num_trees = 80;
    params.max_depth = 6;
    params.learning_rate = 0.15;
    return params;
  }

  static storage::Table* table_;
  static std::vector<workload::LabeledQuery>* conj_;
  static std::vector<workload::LabeledQuery>* mixed_;
};

storage::Table* IntegrationTest::table_ = nullptr;
std::vector<workload::LabeledQuery>* IntegrationTest::conj_ = nullptr;
std::vector<workload::LabeledQuery>* IntegrationTest::mixed_ = nullptr;

TEST_F(IntegrationTest, ConjunctionEncodingBeatsSingularWithGb) {
  const auto [train, test] = Split(*conj_, 300);
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(*table_);
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 32;

  const auto simple =
      featurize::MakeFeaturizer(featurize::QftKind::kSimple, schema);
  ml::GradientBoosting gb_simple(FastGbm());
  const auto simple_or =
      eval::RunQftModel(*simple, gb_simple, train, test);
  ASSERT_TRUE(simple_or.ok()) << simple_or.status();

  const auto conj = featurize::MakeFeaturizer(featurize::QftKind::kConjunctive,
                                              schema, copts);
  ml::GradientBoosting gb_conj(FastGbm());
  const auto conj_or = eval::RunQftModel(*conj, gb_conj, train, test);
  ASSERT_TRUE(conj_or.ok()) << conj_or.status();

  // The paper's Figure 1 / Table 6 finding, at miniature scale.
  EXPECT_LT(conj_or.value().summary.mean, simple_or.value().summary.mean);
  EXPECT_LT(conj_or.value().summary.median, simple_or.value().summary.median);
}

TEST_F(IntegrationTest, DisjunctionEncodingHandlesMixedWorkload) {
  const auto [train, test] = Split(*mixed_, 250);
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(*table_);
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 32;
  const auto comp = featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                              schema, copts);
  ml::GradientBoosting gb(FastGbm());
  const auto result_or = eval::RunQftModel(*comp, gb, train, test);
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  // Learnable: median q-error well below a constant predictor's.
  EXPECT_LT(result_or.value().summary.median, 4.0);
  // The other QFTs cannot even featurize mixed queries.
  const auto simple =
      featurize::MakeFeaturizer(featurize::QftKind::kSimple, schema);
  bool any_rejected = false;
  for (const workload::LabeledQuery& lq : test) {
    if (!simple->Featurize(lq.query).ok()) {
      any_rejected = true;
      break;
    }
  }
  EXPECT_TRUE(any_rejected);
}

TEST_F(IntegrationTest, SqlTextToEstimatePipeline) {
  storage::Catalog cat;
  workload::ForestOptions fopts;
  fopts.num_rows = 8000;
  fopts.num_attributes = 8;
  fopts.seed = 71;
  QFCARD_CHECK_OK(cat.AddTable(workload::MakeForestTable(fopts)));

  const auto [train, test] = Split(*conj_, 300);
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(*table_);
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 32;
  const auto conj = featurize::MakeFeaturizer(featurize::QftKind::kConjunctive,
                                              schema, copts);
  ml::GradientBoosting gb(FastGbm());
  ASSERT_TRUE(eval::RunQftModel(*conj, gb, train, test).ok());

  // Parse a SQL string against the catalog, featurize, predict.
  const auto q_or = query::ParseQuery(
      "SELECT count(*) FROM forest WHERE A1 >= 2400 AND A1 <= 3000 AND "
      "A2 <> 100",
      cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const auto vec_or = conj->Featurize(q_or.value());
  ASSERT_TRUE(vec_or.ok());
  const double est = ml::LabelToCard(gb.Predict(vec_or.value().data()));
  const double truth = static_cast<double>(
      query::Executor::Count(*table_, q_or.value()).value());
  EXPECT_LT(ml::QError(truth, est), 20.0);
}

TEST_F(IntegrationTest, GroupedErrorsGrowWithAttributeCount) {
  // Figure 2's qualitative shape: more attributes -> larger median error.
  const auto [train, test] = Split(*conj_, 400);
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(*table_);
  const auto simple =
      featurize::MakeFeaturizer(featurize::QftKind::kSimple, schema);
  ml::GradientBoosting gb(FastGbm());
  const auto result_or = eval::RunQftModel(*simple, gb, train, test);
  ASSERT_TRUE(result_or.ok());
  const std::map<int, ml::QErrorSummary> by_attrs = eval::SummarizeByGroup(
      result_or.value().qerrors,
      eval::BucketizeGroups(eval::NumAttributesOf(test), {1, 3, 6}));
  ASSERT_GE(by_attrs.size(), 2u);
  // The 1-attribute bucket is easier than the >= 3-attribute buckets for
  // the lossy simple encoding.
  ASSERT_TRUE(by_attrs.count(1));
  ASSERT_TRUE(by_attrs.count(3));
  EXPECT_LT(by_attrs.at(1).median, by_attrs.at(3).median * 1.5 + 0.5);
}

}  // namespace
}  // namespace qfcard
