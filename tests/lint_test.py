"""Self-test for tools/qfcard_lint.py against the tools/testdata/lint/
fixtures (docs/static_analysis.md).

Expectations are embedded in the fixtures: a line ending in
`// expect: <rule> [<rule> ...]` must produce exactly those findings, and
every finding must land on a marked line. good.cc carries no markers and
must lint clean — its justified suppressions prove each suppression
silences exactly its own rule.

Run directly (python3 tests/lint_test.py) or through ctest (lint_selftest).
"""

import pathlib
import re
import subprocess
import sys
import unittest

ROOT = pathlib.Path(__file__).resolve().parent.parent
LINT = ROOT / "tools" / "qfcard_lint.py"
FIXTURES = ROOT / "tools" / "testdata" / "lint"

EXPECT_RE = re.compile(r"//\s*expect:\s*(?P<rules>[\w-]+(?:\s+[\w-]+)*)")
FINDING_RE = re.compile(r"^(?P<file>.+?):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")


def expected_findings(path: pathlib.Path) -> set:
    out = set()
    for idx, line in enumerate(path.read_text().splitlines(), start=1):
        m = EXPECT_RE.search(line)
        if m:
            for rule in m.group("rules").split():
                out.add((idx, rule))
    return out


def run_lint(*paths: pathlib.Path):
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(ROOT)] +
        [str(p) for p in paths],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((int(m.group("line")), m.group("rule")))
    return proc, findings


class LintSelfTest(unittest.TestCase):
    def test_bad_fixture_matches_markers_exactly(self):
        bad = FIXTURES / "bad.cc"
        proc, findings = run_lint(bad)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertEqual(findings, expected_findings(bad),
                         "lint findings diverge from // expect markers:\n"
                         + proc.stdout)

    def test_bad_fixture_covers_regressed_rules(self):
        # The multimap and alias cases were historical false negatives; pin
        # that the fixture actually exercises them so a rule regression
        # cannot hide behind a stale fixture.
        text = (FIXTURES / "bad.cc").read_text()
        self.assertIn("unordered_multimap", text)
        self.assertRegex(text, r"using\s+\w+\s*=\s*std::unordered_")

    def test_good_fixture_is_clean(self):
        proc, findings = run_lint(FIXTURES / "good.cc")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(findings, set())

    def test_reasonless_suppression_message(self):
        proc, _ = run_lint(FIXTURES / "bad.cc")
        self.assertIn("suppression has no reason", proc.stdout)

    def test_repo_sources_are_clean(self):
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(ROOT)],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
