#include "estimators/local_models.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "ml/gbm.h"
#include "ml/metrics.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "test_util.h"
#include "workload/imdb.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::est {
namespace {

class LocalModelsTest : public ::testing::Test {
 protected:
  LocalModelsTest() {
    workload::ImdbOptions opts;
    opts.num_titles = 1500;
    opts.seed = 41;
    db_ = workload::MakeImdbDatabase(opts);
  }

  FeaturizerFactory ConjFactory() {
    return [](featurize::FeatureSchema schema) {
      featurize::ConjunctionOptions copts;
      copts.max_partitions = 16;
      return std::make_unique<featurize::ConjunctionEncoding>(
          std::move(schema), copts);
    };
  }

  ModelFactory GbmFactory() {
    return []() {
      ml::GbmParams params;
      params.num_trees = 60;
      params.max_depth = 5;
      return std::make_unique<ml::GradientBoosting>(params);
    };
  }

  workload::ImdbDatabase db_;
};

TEST_F(LocalModelsTest, MaterializeIsCachedAndNamed) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  const auto mat_or = models.GetOrMaterialize({"title", "cast_info"});
  ASSERT_TRUE(mat_or.ok()) << mat_or.status();
  const storage::Table* first = mat_or.value();
  EXPECT_GT(first->num_rows(), 0);
  ASSERT_TRUE(first->ColumnIndex("title.production_year").ok());
  ASSERT_TRUE(first->ColumnIndex("cast_info.role_id").ok());
  // Second call returns the cached table.
  EXPECT_EQ(models.GetOrMaterialize({"cast_info", "title"}).value(), first);
}

TEST_F(LocalModelsTest, RewriteToLocalPreservesCardinality) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  const auto mat_or = models.GetOrMaterialize({"title", "movie_keyword"});
  ASSERT_TRUE(mat_or.ok());
  const storage::Table& mat = *mat_or.value();

  // Catalog-level join query with predicates on both tables.
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  q.tables.push_back(query::TableRef{"movie_keyword", "movie_keyword"});
  QFCARD_CHECK_OK(db_.graph.PopulateJoins(db_.catalog, q));
  const storage::Table& title = *db_.catalog.GetTable("title").value();
  const int year = title.ColumnIndex("production_year").value();
  testutil::AddCompound(q, year,
                        {{{query::CmpOp::kGe, 1990}, {query::CmpOp::kLe, 2010}}});

  const auto local_or = models.RewriteToLocal(q);
  ASSERT_TRUE(local_or.ok()) << local_or.status();
  const int64_t local_count =
      query::Executor::Count(mat, local_or.value()).value();
  const int64_t join_count =
      query::JoinExecutor::Count(db_.catalog, q).value();
  EXPECT_EQ(local_count, join_count);
}

TEST_F(LocalModelsTest, EstimateRequiresTrainedModel) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  ASSERT_TRUE(models.GetOrMaterialize({"title", "cast_info"}).ok());
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  q.tables.push_back(query::TableRef{"cast_info", "cast_info"});
  QFCARD_CHECK_OK(db_.graph.PopulateJoins(db_.catalog, q));
  EXPECT_EQ(models.EstimateCard(q).status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST_F(LocalModelsTest, UnknownSubSchemaIsNotFound) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  EXPECT_EQ(models.EstimateCard(q).status().code(),
            common::StatusCode::kNotFound);
}

TEST_F(LocalModelsTest, HasModelReflectsTrainingState) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  EXPECT_FALSE(models.HasModel({"title"}));
  ASSERT_TRUE(models.GetOrMaterialize({"title"}).ok());
  // Materialized but untrained.
  EXPECT_FALSE(models.HasModel({"title"}));
}

TEST_F(LocalModelsTest, HybridUsesExactModelWhenAvailable) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  const std::vector<std::string> tables{"title"};
  const storage::Table& mat = *models.GetOrMaterialize(tables).value();
  common::Rng rng(81);
  workload::PredicateGenOptions gen;
  gen.max_attrs = 2;
  gen.allowed_attrs = {mat.ColumnIndex("title.production_year").value()};
  const std::vector<query::Query> qs =
      workload::GeneratePredicateWorkload(mat, 300, gen, rng);
  const auto labeled = workload::LabelOnTable(mat, qs, true).value();
  std::vector<query::Query> queries;
  std::vector<double> cards;
  for (const auto& lq : labeled) {
    queries.push_back(lq.query);
    cards.push_back(lq.card);
  }
  ASSERT_TRUE(models.TrainSubSchema(tables, queries, cards, 0.1, 83).ok());
  const auto pg_or = PostgresStyleEstimator::Build(&db_.catalog);
  ASSERT_TRUE(pg_or.ok());
  const HybridEstimator hybrid(&models, &pg_or.value());
  // Single-table query over title: hybrid must equal the local model
  // exactly (layer 1, no synopsis scaling).
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  const storage::Table& title = *db_.catalog.GetTable("title").value();
  testutil::AddCompound(
      q, title.ColumnIndex("production_year").value(),
      {{{query::CmpOp::kGe, 1990}, {query::CmpOp::kLe, 2005}}});
  EXPECT_DOUBLE_EQ(hybrid.EstimateCard(q).value(),
                   models.EstimateCard(q).value());
}

TEST_F(LocalModelsTest, HybridFallsBackThroughLayers) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  const auto pg_or = PostgresStyleEstimator::Build(&db_.catalog);
  ASSERT_TRUE(pg_or.ok());
  const HybridEstimator hybrid(&models, &pg_or.value());

  // Layer 3: no models at all -> pure synopses estimate.
  query::Query join_q;
  join_q.tables.push_back(query::TableRef{"title", "title"});
  join_q.tables.push_back(query::TableRef{"cast_info", "cast_info"});
  QFCARD_CHECK_OK(db_.graph.PopulateJoins(db_.catalog, join_q));
  const double pg_est = pg_or.value().EstimateCard(join_q).value();
  EXPECT_DOUBLE_EQ(hybrid.EstimateCard(join_q).value(), pg_est);

  // Train a single-table model for title; the 2-table query should now use
  // it as the learned core, scaled by the synopses join factor.
  const std::vector<std::string> title_only{"title"};
  const storage::Table& mat = *models.GetOrMaterialize(title_only).value();
  common::Rng rng(61);
  workload::PredicateGenOptions gen;
  gen.max_attrs = 2;
  gen.allowed_attrs = {
      mat.ColumnIndex("title.production_year").value(),
      mat.ColumnIndex("title.kind_id").value(),
  };
  const std::vector<query::Query> qs =
      workload::GeneratePredicateWorkload(mat, 400, gen, rng);
  const auto labeled = workload::LabelOnTable(mat, qs, true).value();
  std::vector<query::Query> queries;
  std::vector<double> cards;
  for (const auto& lq : labeled) {
    queries.push_back(lq.query);
    cards.push_back(lq.card);
  }
  ASSERT_TRUE(models.TrainSubSchema(title_only, queries, cards, 0.1, 63).ok());
  EXPECT_TRUE(models.HasModel(title_only));

  // Layer 2: add a title predicate; the hybrid estimate must differ from
  // the pure synopses estimate (the learned core kicks in) and stay finite.
  const storage::Table& title = *db_.catalog.GetTable("title").value();
  testutil::AddCompound(
      join_q, title.ColumnIndex("production_year").value(),
      {{{query::CmpOp::kGe, 1995}, {query::CmpOp::kLe, 2010}}});
  const auto hybrid_or = hybrid.EstimateCard(join_q);
  ASSERT_TRUE(hybrid_or.ok()) << hybrid_or.status();
  EXPECT_GE(hybrid_or.value(), 1.0);
  const double truth = static_cast<double>(
      query::JoinExecutor::Count(db_.catalog, join_q).value());
  EXPECT_LT(ml::QError(truth, hybrid_or.value()), 50.0);
}

TEST_F(LocalModelsTest, TrainedModelEstimatesJoinQueries) {
  LocalModelSet models(&db_.catalog, &db_.graph, ConjFactory(), GbmFactory());
  const std::vector<std::string> tables{"title", "movie_info_idx"};
  const auto mat_or = models.GetOrMaterialize(tables);
  ASSERT_TRUE(mat_or.ok());
  const storage::Table& mat = *mat_or.value();

  // Train on selection queries over the materialized join.
  common::Rng rng(43);
  workload::PredicateGenOptions gen;
  gen.max_attrs = 3;
  gen.max_not_equals = 1;
  // Restrict to non-key attributes.
  for (const char* name :
       {"title.production_year", "title.kind_id", "movie_info_idx.rating"}) {
    gen.allowed_attrs.push_back(mat.ColumnIndex(name).value());
  }
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(mat, 600, gen, rng);
  const auto labeled_or = workload::LabelOnTable(mat, queries, true);
  ASSERT_TRUE(labeled_or.ok());
  std::vector<query::Query> qs;
  std::vector<double> cards;
  for (const auto& lq : labeled_or.value()) {
    qs.push_back(lq.query);
    cards.push_back(lq.card);
  }
  ASSERT_TRUE(models.TrainSubSchema(tables, qs, cards, 0.1, 45).ok());
  EXPECT_EQ(models.num_models(), 1);
  EXPECT_GT(models.SizeBytes(), 0u);

  // Catalog-level join query routed through the local model.
  query::Query q;
  q.tables.push_back(query::TableRef{"title", "title"});
  q.tables.push_back(query::TableRef{"movie_info_idx", "movie_info_idx"});
  QFCARD_CHECK_OK(db_.graph.PopulateJoins(db_.catalog, q));
  const storage::Table& title = *db_.catalog.GetTable("title").value();
  testutil::AddCompound(
      q, title.ColumnIndex("production_year").value(),
      {{{query::CmpOp::kGe, 1980}, {query::CmpOp::kLe, 2015}}});
  const auto est_or = models.EstimateCard(q);
  ASSERT_TRUE(est_or.ok()) << est_or.status();
  const double truth =
      static_cast<double>(query::JoinExecutor::Count(db_.catalog, q).value());
  // Trained on this sub-schema's distribution: the estimate must be sane.
  EXPECT_LT(ml::QError(truth, est_or.value()), 10.0);
}

}  // namespace
}  // namespace qfcard::est
