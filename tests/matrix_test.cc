// Golden-report tests for the estimator x workload benchmark matrix
// (src/eval/matrix.h). The load-bearing property is the determinism
// contract: a deterministic report (include_timings=false) must be
// byte-identical run-to-run AND across thread-pool sizes — CI diffs the
// QFCARD_THREADS=1 and =4 legs against each other, so any drift here is a
// release blocker. The remaining tests pin the report structure the
// tools/validate_bench.py validator and the perf-trajectory consumers
// parse, plus the eval.matrix.* telemetry the metrics schema requires.

#include "eval/matrix.h"

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "workload/families.h"

namespace qfcard::eval {
namespace {

// Pinned mini-matrix: 2 untrained estimators x 3 families at tiny sizes,
// the same shape CI's matrix-smoke step runs.
MatrixOptions MiniOptions() {
  MatrixOptions options;
  options.estimators = {"postgres", "sampling"};
  options.families = {"conjunctive", "strings", "in_heavy"};
  options.sizes.rows = 600;
  options.sizes.train = 30;
  options.sizes.test = 20;
  options.seed = 42;
  options.include_timings = false;
  options.report_name = "mini";
  return options;
}

std::string RunMiniJson() {
  const auto report_or = RunMatrix(MiniOptions());
  QFCARD_CHECK_OK(report_or.status());
  return report_or.value().ToJson();
}

TEST(MatrixGoldenTest, DeterministicReportIsIdenticalAcrossThreadCounts) {
  common::SetGlobalThreads(1);
  const std::string at_one = RunMiniJson();
  common::SetGlobalThreads(4);
  const std::string at_four = RunMiniJson();
  common::SetGlobalThreads(1);
  EXPECT_EQ(at_one, at_four)
      << "deterministic matrix reports must be byte-identical at every "
         "QFCARD_THREADS";
}

TEST(MatrixGoldenTest, DeterministicReportIsIdenticalRunToRun) {
  EXPECT_EQ(RunMiniJson(), RunMiniJson());
}

TEST(MatrixGoldenTest, ReportStructureMatchesSchema) {
  const auto report_or = RunMatrix(MiniOptions());
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const MatrixReport& report = report_or.value();

  EXPECT_EQ(report.name, "mini");
  EXPECT_TRUE(report.deterministic);
  EXPECT_EQ(report.threads, 0);  // deterministic reports record 0
  ASSERT_EQ(report.estimators.size(), 2u);
  ASSERT_EQ(report.families.size(), 3u);
  ASSERT_EQ(report.cells.size(), 6u);

  for (const MatrixCell& cell : report.cells) {
    EXPECT_EQ(cell.status, CellStatus::kOk)
        << cell.estimator << " x " << cell.family << ": " << cell.message;
    EXPECT_GT(cell.train_queries, 0);
    EXPECT_GT(cell.test_queries, 0);
    EXPECT_GE(cell.qerror_p50, 1.0);
    EXPECT_GE(cell.qerror_p95, cell.qerror_p50);
    EXPECT_GE(cell.qerror_max, 1.0);
    // The determinism contract zeroes every timing field.
    EXPECT_EQ(cell.train_seconds, 0.0);
    EXPECT_EQ(cell.usec_per_query, 0.0);
  }

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"kind\":\"matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cells_ok\",\"unit\":\"count\",\"value\":6"),
            std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(MatrixGoldenTest, UnsupportedPairsAreSkippedNotErrored) {
  MatrixOptions options = MiniOptions();
  // sampling has no join support; gb+conjunctive rejects disjunctions.
  options.estimators = {"sampling", "gb+conjunctive"};
  options.families = {"correlated_join", "mixed"};
  const auto report_or = RunMatrix(options);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  int unsupported = 0;
  for (const MatrixCell& cell : report_or.value().cells) {
    EXPECT_NE(cell.status, CellStatus::kError)
        << cell.estimator << " x " << cell.family << ": " << cell.message;
    if (cell.status == CellStatus::kUnsupported) ++unsupported;
  }
  // sampling x correlated_join, gb+conjunctive x {correlated_join, mixed}.
  EXPECT_EQ(unsupported, 3);
}

TEST(MatrixGoldenTest, UnknownAxisNamesFailWithDidYouMean) {
  MatrixOptions options = MiniOptions();
  options.estimators = {"postgrse"};
  const auto bad_estimator = RunMatrix(options);
  ASSERT_FALSE(bad_estimator.ok());
  EXPECT_NE(bad_estimator.status().ToString().find("did you mean"),
            std::string::npos);

  options = MiniOptions();
  options.families = {"stings"};
  const auto bad_family = RunMatrix(options);
  ASSERT_FALSE(bad_family.ok());
  EXPECT_NE(bad_family.status().ToString().find("did you mean"),
            std::string::npos);
}

TEST(MatrixGoldenTest, EmitsEvalMatrixTelemetry) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().ResetForTest();
  const auto report_or = RunMatrix(MiniOptions());
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();

  uint64_t cells_ok = 0;
  uint64_t queries = 0;
  for (const auto& row : obs::MetricsRegistry::Global().CounterRows()) {
    if (row.name == "eval.matrix.cells" && row.labels == "status=ok") {
      cells_ok = row.value;
    }
    if (row.name == "eval.matrix.queries") queries = row.value;
  }
  EXPECT_EQ(cells_ok, 6u);
  EXPECT_GT(queries, 0u);

  bool saw_cell_seconds = false;
  bool saw_qerror = false;
  for (const auto& row : obs::MetricsRegistry::Global().HistogramRows()) {
    if (row.name == "eval.matrix.cell_seconds" && row.count > 0) {
      saw_cell_seconds = true;
    }
    if (row.name == "eval.matrix.qerror" && row.count > 0) saw_qerror = true;
  }
  EXPECT_TRUE(saw_cell_seconds);
  EXPECT_TRUE(saw_qerror);
  obs::MetricsRegistry::Global().ResetForTest();
  obs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace qfcard::eval
