// Unit tests for the metamorphic invariant checkers (src/testing/
// metamorphic.h): each checker passes on estimators that honor the
// invariant and produces a FailedPrecondition violation on planted
// estimators that break it.

#include "testing/metamorphic.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "estimators/estimator.h"
#include "estimators/true_card.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace qfcard::testing {
namespace {

using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::SingleTableQuery;
using testutil::SmallCatalog;

// Deliberately broken estimators used to verify the checkers detect
// violations.

// Anti-monotone in range width: estimate is the negated sum of literals, so
// widening an upper bound (literal grows) shrinks the estimate.
class NegatedLiteralSumEstimator : public est::CardinalityEstimator {
 public:
  common::StatusOr<double> EstimateCard(const query::Query& q) const override {
    double sum = 0.0;
    for (const query::CompoundPredicate& cp : q.predicates) {
      for (const query::ConjunctiveClause& clause : cp.disjuncts) {
        for (const query::SimplePredicate& p : clause.preds) sum -= p.value;
      }
    }
    return sum;
  }
  std::string name() const override { return "negated-literal-sum"; }
};

// Grows with predicate count: adding a conjunct increases the estimate.
class PredicateCountEstimator : public est::CardinalityEstimator {
 public:
  common::StatusOr<double> EstimateCard(const query::Query& q) const override {
    return static_cast<double>(q.predicates.size()) * 10.0;
  }
  std::string name() const override { return "predicate-count"; }
};

// Shrinks as IN-lists grow: superset gets a smaller estimate.
class NegatedDisjunctCountEstimator : public est::CardinalityEstimator {
 public:
  common::StatusOr<double> EstimateCard(const query::Query& q) const override {
    double disjuncts = 0.0;
    for (const query::CompoundPredicate& cp : q.predicates) {
      disjuncts += static_cast<double>(cp.disjuncts.size());
    }
    return 1000.0 - disjuncts;
  }
  std::string name() const override { return "negated-disjunct-count"; }
};

// Order-sensitive: the estimate depends on which predicate comes first.
class FirstPredicateEstimator : public est::CardinalityEstimator {
 public:
  common::StatusOr<double> EstimateCard(const query::Query& q) const override {
    if (q.predicates.empty()) return 1.0;
    return static_cast<double>(q.predicates.front().col.column + 1);
  }
  std::string name() const override { return "first-predicate"; }
};

query::Query RangeQuery() {
  query::Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{query::CmpOp::kGe, 2}, {query::CmpOp::kLe, 7}}});
  return q;
}

TEST(MetamorphicTest, WideningHoldsForTrueEstimator) {
  const storage::Catalog catalog = SmallCatalog();
  const est::TrueCardEstimator oracle(&catalog);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    common::Rng rng(seed);
    QFCARD_CHECK_OK(CheckWideningMonotone(oracle, RangeQuery(), rng));
  }
}

TEST(MetamorphicTest, WideningViolationDetected) {
  const NegatedLiteralSumEstimator broken;
  query::Query q = SingleTableQuery("small");
  AddPredicate(q, 0, query::CmpOp::kLe, 5);  // widening raises the literal
  common::Rng rng(1);
  const common::Status status = CheckWideningMonotone(broken, q, rng);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("widening-monotone"), std::string::npos)
      << status.ToString();
}

TEST(MetamorphicTest, WideningVacuousWithoutRangePredicates) {
  const NegatedLiteralSumEstimator broken;
  query::Query q = SingleTableQuery("small");
  AddPredicate(q, 0, query::CmpOp::kEq, 5);  // no pure-range clause
  common::Rng rng(1);
  QFCARD_CHECK_OK(CheckWideningMonotone(broken, q, rng));
}

TEST(MetamorphicTest, ConjunctHoldsForTrueEstimator) {
  const storage::Catalog catalog = SmallCatalog();
  const est::TrueCardEstimator oracle(&catalog);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    common::Rng rng(seed);
    QFCARD_CHECK_OK(
        CheckConjunctMonotone(oracle, catalog, RangeQuery(), rng));
  }
}

TEST(MetamorphicTest, ConjunctViolationDetected) {
  const storage::Catalog catalog = SmallCatalog();
  const PredicateCountEstimator broken;
  common::Rng rng(1);
  const common::Status status =
      CheckConjunctMonotone(broken, catalog, RangeQuery(), rng);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("conjunct-monotone"), std::string::npos);
}

TEST(MetamorphicTest, InListHoldsForTrueEstimator) {
  const storage::Catalog catalog = SmallCatalog();
  const est::TrueCardEstimator oracle(&catalog);
  query::Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{query::CmpOp::kEq, 1}}, {{query::CmpOp::kEq, 4}}});
  for (uint64_t seed = 0; seed < 20; ++seed) {
    common::Rng rng(seed);
    QFCARD_CHECK_OK(CheckInListMonotone(oracle, q, rng));
  }
}

TEST(MetamorphicTest, InListViolationDetected) {
  const NegatedDisjunctCountEstimator broken;
  query::Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{query::CmpOp::kEq, 1}}, {{query::CmpOp::kEq, 4}}});
  common::Rng rng(1);
  const common::Status status = CheckInListMonotone(broken, q, rng);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("in-list-monotone"), std::string::npos);
}

TEST(MetamorphicTest, PermutationHoldsForTrueEstimator) {
  const storage::Catalog catalog = SmallCatalog();
  const est::TrueCardEstimator oracle(&catalog);
  query::Query q = RangeQuery();
  AddPredicate(q, 1, query::CmpOp::kLe, 70);
  q.group_by.push_back(query::ColumnRef{0, 0});
  q.group_by.push_back(query::ColumnRef{0, 1});
  for (uint64_t seed = 0; seed < 20; ++seed) {
    common::Rng rng(seed);
    QFCARD_CHECK_OK(CheckPermutationInvariance(oracle, q, rng));
  }
}

TEST(MetamorphicTest, PermutationViolationDetected) {
  const FirstPredicateEstimator broken;
  query::Query q = SingleTableQuery("small");
  AddPredicate(q, 0, query::CmpOp::kLe, 5);
  AddPredicate(q, 1, query::CmpOp::kLe, 50);
  // Some shuffle will swap the two predicates; any seed whose shuffle is the
  // identity is a vacuous pass, so scan a few.
  bool detected = false;
  for (uint64_t seed = 0; seed < 20 && !detected; ++seed) {
    common::Rng rng(seed);
    const common::Status status = CheckPermutationInvariance(broken, q, rng);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
      EXPECT_NE(status.message().find("permutation-invariance"),
                std::string::npos);
      detected = true;
    }
  }
  EXPECT_TRUE(detected) << "no shuffle in 20 seeds swapped two predicates";
}

TEST(MetamorphicTest, PermuteQueryPreservesComponents) {
  query::Query q = RangeQuery();
  AddCompound(q, 1, {{{query::CmpOp::kEq, 10}}, {{query::CmpOp::kEq, 30}}});
  q.group_by.push_back(query::ColumnRef{0, 0});
  common::Rng rng(7);
  const query::Query permuted = PermuteQuery(q, rng);
  EXPECT_EQ(permuted.tables.size(), q.tables.size());
  EXPECT_EQ(permuted.predicates.size(), q.predicates.size());
  EXPECT_EQ(permuted.group_by.size(), q.group_by.size());
  // Same compounds as a set (keyed by column).
  auto cols = [](const query::Query& query) {
    std::vector<int> out;
    for (const query::CompoundPredicate& cp : query.predicates) {
      out.push_back(cp.col.column);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(cols(permuted), cols(q));
}

TEST(MetamorphicTest, FeaturizationPermutationInvariant) {
  const storage::Catalog catalog = SmallCatalog();
  const storage::Table& table = catalog.table(0);
  for (const featurize::QftKind kind :
       {featurize::QftKind::kConjunctive, featurize::QftKind::kComplex}) {
    const auto featurizer = featurize::MakeFeaturizer(
        kind, featurize::FeatureSchema::FromTable(table), {});
    query::Query q = RangeQuery();
    AddCompound(q, 1, {{{query::CmpOp::kEq, 10}}, {{query::CmpOp::kEq, 30}}});
    for (uint64_t seed = 0; seed < 10; ++seed) {
      common::Rng rng(seed);
      QFCARD_CHECK_OK(
          CheckFeaturizationPermutationInvariance(*featurizer, q, rng));
    }
  }
}

TEST(MetamorphicTest, TrueCardExactOnSmallCatalog) {
  const storage::Catalog catalog = SmallCatalog();
  QFCARD_CHECK_OK(CheckTrueCardExact(catalog, RangeQuery()));
  query::Query grouped = SingleTableQuery("small");
  grouped.group_by.push_back(query::ColumnRef{0, 0});
  QFCARD_CHECK_OK(CheckTrueCardExact(catalog, grouped));
}

}  // namespace
}  // namespace qfcard::testing
