// Tests for the obs telemetry core (docs/observability.md): counter and
// histogram exactness under concurrent writers, snapshot-while-writing
// safety (exercised under TSan in CI), registry pointer identity across
// ResetForTest, exporter content, runtime gating, quantile math, and the
// q-error drift monitor's degradation state machine.

#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/qerror_monitor.h"

namespace qfcard::obs {
namespace {

// Every test in this binary runs with metrics ON unless it flips the toggle
// itself; the fixture restores the OFF default either way so tests stay
// order-independent.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMetricsEnabled(true); }
  void TearDown() override { SetMetricsEnabled(false); }
};

TEST_F(MetricsTest, CounterConcurrentAddsAreExact) {
  common::ThreadPool pool(8);
  MetricsRegistry registry;
  Counter* ctr = registry.CounterNamed("t.ctr");
  constexpr int64_t kAdds = 200000;
  pool.ParallelFor(kAdds, [&](int64_t) { ctr->Add(); });
  EXPECT_EQ(ctr->Value(), static_cast<uint64_t>(kAdds));
  // Weighted adds accumulate exactly too.
  pool.ParallelFor(1000, [&](int64_t) { ctr->Add(3); });
  EXPECT_EQ(ctr->Value(), static_cast<uint64_t>(kAdds + 3000));
}

TEST_F(MetricsTest, HistogramConcurrentObservesAreExact) {
  common::ThreadPool pool(8);
  Histogram hist(LatencyBounds());
  constexpr int64_t kObs = 100000;
  // 1.0 is exactly representable and stays exact across any summation
  // order, so Sum() must be exact despite relaxed CAS adds.
  pool.ParallelFor(kObs, [&](int64_t i) { hist.Observe(i % 2 == 0 ? 1.0 : 2.0); });
  EXPECT_EQ(hist.Count(), static_cast<uint64_t>(kObs));
  EXPECT_DOUBLE_EQ(hist.Sum(), 1.5 * static_cast<double>(kObs));
  EXPECT_DOUBLE_EQ(hist.Max(), 2.0);
  // Per-bucket counts account for every observation.
  uint64_t total = 0;
  for (const uint64_t c : hist.BucketCounts()) total += c;
  EXPECT_EQ(total, static_cast<uint64_t>(kObs));
}

TEST_F(MetricsTest, SnapshotWhileWritingIsSafeAndExactAtQuiescence) {
  MetricsRegistry registry;
  Counter* ctr = registry.CounterNamed("t.snapshot.ctr");
  Histogram* hist =
      registry.HistogramNamed("t.snapshot.hist", LatencyBounds());
  constexpr uint64_t kWrites = 150000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < kWrites; ++i) {
      ctr->Add();
      hist->Observe(1e-4);
    }
    done.store(true, std::memory_order_release);
  });
  // Concurrent readers must never crash, tear, or (under TSan) race; counts
  // they see are monotonic because writers only add.
  uint64_t last_seen = 0;
  while (!done.load(std::memory_order_acquire)) {
    const std::string json = registry.ToJson();
    EXPECT_NE(json.find("t.snapshot.ctr"), std::string::npos);
    const std::string prom = registry.ToPrometheus();
    EXPECT_NE(prom.find("t_snapshot_hist_count"), std::string::npos);
    for (const MetricsRegistry::CounterRow& row : registry.CounterRows()) {
      if (row.name == "t.snapshot.ctr") {
        EXPECT_GE(row.value, last_seen);
        last_seen = row.value;
      }
    }
  }
  writer.join();
  EXPECT_EQ(ctr->Value(), kWrites);
  EXPECT_EQ(hist->Count(), kWrites);
}

TEST_F(MetricsTest, RegistryReturnsStableIdentityPerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.CounterNamed("t.id", "backend=gb");
  Counter* b = registry.CounterNamed("t.id", "backend=gb");
  Counter* c = registry.CounterNamed("t.id", "backend=nn");
  Counter* d = registry.CounterNamed("t.id2", "backend=gb");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  // Histogram bounds apply on first creation only.
  Histogram* h1 = registry.HistogramNamed("t.h", LatencyBounds());
  Histogram* h2 = registry.HistogramNamed("t.h", QErrorBounds());
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds(), LatencyBounds());
}

TEST_F(MetricsTest, ResetForTestZeroesInPlaceKeepingPointersValid) {
  // Instrumented code (the thread pool, estimators) caches registry
  // pointers in function-local statics, so Reset must never invalidate
  // them — it zeroes values in place.
  MetricsRegistry registry;
  Counter* ctr = registry.CounterNamed("t.reset.ctr");
  Gauge* gauge = registry.GaugeNamed("t.reset.gauge");
  Histogram* hist = registry.HistogramNamed("t.reset.hist", LatencyBounds());
  ctr->Add(7);
  gauge->Set(5);
  hist->Observe(0.25);
  registry.ResetForTest();
  EXPECT_EQ(registry.CounterNamed("t.reset.ctr"), ctr);
  EXPECT_EQ(registry.GaugeNamed("t.reset.gauge"), gauge);
  EXPECT_EQ(registry.HistogramNamed("t.reset.hist", LatencyBounds()), hist);
  EXPECT_EQ(ctr->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Count(), 0u);
  EXPECT_DOUBLE_EQ(hist->Sum(), 0.0);
  EXPECT_DOUBLE_EQ(hist->Max(), 0.0);
  // The old pointer keeps recording after the reset.
  ctr->Add(2);
  EXPECT_EQ(registry.CounterNamed("t.reset.ctr")->Value(), 2u);
}

TEST_F(MetricsTest, QuantileInterpolationAndEdgeBuckets) {
  Histogram hist({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);  // empty
  // All mass in the first bucket: quantiles report its upper edge.
  hist.Observe(0.5);
  hist.Observe(0.25);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 1.0);
  hist.Reset();
  // All mass past the last edge: the overflow bucket reports the exact max.
  hist.Observe(10.0);
  hist.Observe(20.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 20.0);
  hist.Reset();
  // Interior bucket: linear interpolation between its edges. Ten values in
  // (1, 2]; the median lands halfway through that bucket.
  for (int i = 0; i < 10; ++i) hist.Observe(1.5);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 2.0);
}

TEST_F(MetricsTest, StandardBoundsAreStrictlyAscending) {
  for (const std::vector<double>* bounds : {&LatencyBounds(), &QErrorBounds()}) {
    ASSERT_FALSE(bounds->empty());
    for (size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

TEST_F(MetricsTest, JsonAndPrometheusExportContent) {
  MetricsRegistry registry;
  registry.CounterNamed("t.export.ctr", "backend=gb")->Add(3);
  Histogram* hist = registry.HistogramNamed("t.export.hist", {1.0, 2.0});
  hist->Observe(0.5);
  hist->Observe(1.5);
  hist->Observe(9.0);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"name\":\"t.export.ctr\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":\"backend=gb\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE t_export_ctr counter"), std::string::npos);
  EXPECT_NE(prom.find("t_export_ctr{backend=\"gb\"} 3"), std::string::npos);
  // Histogram buckets are cumulative; the +Inf bucket equals the count.
  EXPECT_NE(prom.find("t_export_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("t_export_hist_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("t_export_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("t_export_hist_count 3"), std::string::npos);
}

TEST_F(MetricsTest, JsonEscapingHandlesQuotesAndControlChars) {
  EXPECT_EQ(internal::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(internal::JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST_F(MetricsTest, DisabledGatingSkipsConvenienceWrites) {
  SetMetricsEnabled(false);
  IncrementCounter("t.gate.never");
  ObserveLatency("t.gate.never.lat", 0.1);
  for (const MetricsRegistry::CounterRow& row :
       MetricsRegistry::Global().CounterRows()) {
    EXPECT_NE(row.name, "t.gate.never");
  }
  SetMetricsEnabled(true);
  IncrementCounter("t.gate.once");
  uint64_t value = 0;
  for (const MetricsRegistry::CounterRow& row :
       MetricsRegistry::Global().CounterRows()) {
    if (row.name == "t.gate.once") value = row.value;
  }
  EXPECT_EQ(value, 1u);
}

TEST_F(MetricsTest, ScopedTimerRecordsExactlyOnce) {
  MetricsRegistry::Global().ResetForTest();
  {
    ScopedTimer timer("t.timer.hist");
    volatile double acc = 0;
    for (int i = 0; i < 1000; ++i) acc = acc + i;
    const double first = timer.Stop();
    EXPECT_GE(first, 0.0);
    timer.Stop();  // recording already happened; this must not observe again
  }  // destructor must not double-record either
  Histogram* hist = MetricsRegistry::Global().HistogramNamed(
      "t.timer.hist", LatencyBounds());
  EXPECT_EQ(hist->Count(), 1u);
}

// ---------------------------------------------------------------------------
// QErrorDriftMonitor
// ---------------------------------------------------------------------------

TEST_F(MetricsTest, DriftMonitorFlipsOnP95AndRecovers) {
  DriftMonitorOptions opts;
  opts.window = 8;
  opts.p95_threshold = 2.0;
  opts.min_samples = 4;
  QErrorDriftMonitor monitor(opts);

  for (int i = 0; i < 4; ++i) monitor.Observe(1.0);
  EXPECT_FALSE(monitor.degraded());
  for (int i = 0; i < 4; ++i) monitor.Observe(100.0);
  EXPECT_TRUE(monitor.degraded());
  QErrorDriftMonitor::State s = monitor.GetState();
  EXPECT_EQ(s.flips, 1u);
  EXPECT_EQ(s.observed, 8u);
  EXPECT_EQ(s.window_fill, 8u);
  EXPECT_EQ(s.window_size, 8u);
  EXPECT_DOUBLE_EQ(s.max_qerror, 100.0);
  EXPECT_GT(s.p95, s.threshold);

  // The ring evicts the spikes: eight healthy labels restore the flag.
  for (int i = 0; i < 8; ++i) monitor.Observe(1.0);
  EXPECT_FALSE(monitor.degraded());
  // A second degradation counts a second flip.
  for (int i = 0; i < 8; ++i) monitor.Observe(100.0);
  s = monitor.GetState();
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.flips, 2u);
  EXPECT_EQ(s.observed, 24u);
}

TEST_F(MetricsTest, DriftMonitorWithholdsVerdictBelowMinSamples) {
  DriftMonitorOptions opts;
  opts.window = 16;
  opts.p95_threshold = 2.0;
  opts.min_samples = 4;
  QErrorDriftMonitor monitor(opts);
  monitor.Observe(500.0);
  monitor.Observe(500.0);
  monitor.Observe(500.0);
  EXPECT_FALSE(monitor.degraded());  // only 3 of the required 4 samples
  monitor.Observe(500.0);
  EXPECT_TRUE(monitor.degraded());
}

TEST_F(MetricsTest, DriftMonitorResetClearsStateAndReconfigures) {
  DriftMonitorOptions opts;
  opts.window = 4;
  opts.p95_threshold = 2.0;
  opts.min_samples = 2;
  QErrorDriftMonitor monitor(opts);
  for (int i = 0; i < 4; ++i) monitor.Observe(50.0);
  EXPECT_TRUE(monitor.degraded());
  DriftMonitorOptions wider = opts;
  wider.window = 32;
  monitor.Reset(&wider);
  const QErrorDriftMonitor::State s = monitor.GetState();
  EXPECT_FALSE(s.degraded);
  EXPECT_EQ(s.observed, 0u);
  EXPECT_EQ(s.window_fill, 0u);
  EXPECT_EQ(s.window_size, 32u);
  EXPECT_DOUBLE_EQ(s.max_qerror, 0.0);
  EXPECT_EQ(s.flips, 0u);
  EXPECT_NE(monitor.ToJson().find("\"degraded\":false"), std::string::npos);
}

TEST_F(MetricsTest, DriftMonitorConcurrentObserversKeepExactCounts) {
  DriftMonitorOptions opts;
  opts.window = 64;
  QErrorDriftMonitor monitor(opts);
  common::ThreadPool pool(8);
  constexpr int64_t kObs = 20000;
  pool.ParallelFor(kObs, [&](int64_t i) {
    monitor.Observe(1.0 + static_cast<double>(i % 10) / 10.0);
  });
  const QErrorDriftMonitor::State s = monitor.GetState();
  EXPECT_EQ(s.observed, static_cast<uint64_t>(kObs));
  EXPECT_EQ(s.window_fill, 64u);
  EXPECT_FALSE(s.degraded);
}

}  // namespace
}  // namespace qfcard::obs
