#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/grid_search.h"
#include "ml/linear.h"
#include "ml/matrix.h"
#include "ml/metrics.h"

namespace qfcard::ml {
namespace {

TEST(MatrixTest, AccessorsAndLayout) {
  Matrix m(2, 3);
  m.At(0, 0) = 1.0f;
  m.At(1, 2) = 5.0f;
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_FLOAT_EQ(m.Row(1)[2], 5.0f);
  EXPECT_EQ(m.SizeBytes(), 6 * sizeof(float));
}

Matrix NaiveMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      out.At(i, j) = acc;
    }
  }
  return out;
}

TEST(MatrixTest, GemmMatchesNaive) {
  common::Rng rng(3);
  Matrix a(4, 5);
  Matrix b(5, 3);
  for (float& v : a.data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.data()) v = static_cast<float>(rng.Normal());
  Matrix out(4, 3);
  GemmAccumulate(a, b, out);
  const Matrix expected = NaiveMul(a, b);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(out.At(i, j), expected.At(i, j), 1e-4);
    }
  }
}

TEST(MatrixTest, GemmBTMatchesNaive) {
  common::Rng rng(4);
  Matrix a(3, 5);
  Matrix b(4, 5);  // interpreted as transposed [5 x 4]
  for (float& v : a.data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.data()) v = static_cast<float>(rng.Normal());
  Matrix out(3, 4);
  GemmBTAccumulate(a, b, out);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 5; ++k) acc += a.At(i, k) * b.At(j, k);
      EXPECT_NEAR(out.At(i, j), acc, 1e-4);
    }
  }
}

TEST(MatrixTest, GemmATMatchesNaive) {
  common::Rng rng(5);
  Matrix a(6, 3);
  Matrix b(6, 2);
  for (float& v : a.data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.data()) v = static_cast<float>(rng.Normal());
  Matrix out(3, 2);
  GemmATAccumulate(a, b, out);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 6; ++k) acc += a.At(k, i) * b.At(k, j);
      EXPECT_NEAR(out.At(i, j), acc, 1e-4);
    }
  }
}

TEST(DatasetTest, FromVectorsAndSubset) {
  const auto data_or =
      Dataset::FromVectors({{1, 2}, {3, 4}, {5, 6}}, {10, 20, 30});
  ASSERT_TRUE(data_or.ok());
  const Dataset& data = data_or.value();
  EXPECT_EQ(data.num_rows(), 3);
  EXPECT_EQ(data.dim(), 2);
  const Dataset sub = data.Subset({2, 0});
  EXPECT_EQ(sub.num_rows(), 2);
  EXPECT_FLOAT_EQ(sub.x.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(sub.y[1], 10.0f);
}

TEST(DatasetTest, FromVectorsRejectsMismatch) {
  EXPECT_FALSE(Dataset::FromVectors({{1, 2}}, {1, 2}).ok());
  EXPECT_FALSE(Dataset::FromVectors({{1, 2}, {3}}, {1, 2}).ok());
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  std::vector<std::vector<float>> rows;
  std::vector<float> labels;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({static_cast<float>(i)});
    labels.push_back(static_cast<float>(i));
  }
  const Dataset data = Dataset::FromVectors(rows, labels).value();
  common::Rng rng(9);
  const TrainTestSplit split = SplitTrainTest(data, 0.8, rng);
  EXPECT_EQ(split.train.num_rows(), 80);
  EXPECT_EQ(split.test.num_rows(), 20);
  // All original labels present exactly once.
  std::vector<float> all = split.train.y;
  all.insert(all.end(), split.test.y.begin(), split.test.y.end());
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(DatasetTest, HeadClampsToSize) {
  const Dataset data =
      Dataset::FromVectors({{1}, {2}, {3}}, {1, 2, 3}).value();
  EXPECT_EQ(data.Head(2).num_rows(), 2);
  EXPECT_FLOAT_EQ(data.Head(2).y[1], 2.0f);
  EXPECT_EQ(data.Head(100).num_rows(), 3);
  EXPECT_EQ(data.Head(0).num_rows(), 0);
}

TEST(DatasetTest, LabelRoundTrip) {
  EXPECT_FLOAT_EQ(CardToLabel(1.0), 0.0f);
  EXPECT_FLOAT_EQ(CardToLabel(1024.0), 10.0f);
  EXPECT_DOUBLE_EQ(LabelToCard(10.0f), 1024.0);
  // Estimates clamp to >= 1 (paper convention).
  EXPECT_DOUBLE_EQ(LabelToCard(-5.0f), 1.0);
  EXPECT_FLOAT_EQ(CardToLabel(0.0), 0.0f);
}

TEST(MetricsTest, QErrorProperties) {
  EXPECT_DOUBLE_EQ(QError(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(QError(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(QError(50, 100), 2.0);  // symmetric
  EXPECT_DOUBLE_EQ(QError(0.0, 0.5), 1.0);  // clamps to >= 1
  EXPECT_GE(QError(3, 7), 1.0);
}

TEST(MetricsTest, QuantileSorted) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(QuantileSorted({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(QuantileSorted({}, 0.5), 0.0);
}

TEST(MetricsTest, SummaryStatistics) {
  std::vector<double> errors;
  for (int i = 1; i <= 100; ++i) errors.push_back(i);
  const QErrorSummary s = QErrorSummary::FromErrors(errors);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 0.01);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p99, 100.0, 1.1);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p99);
}

TEST(MetricsTest, QErrorsPairsInputs) {
  const std::vector<double> errors = QErrors({10, 20, 30}, {10, 40, 15});
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_DOUBLE_EQ(errors[0], 1.0);
  EXPECT_DOUBLE_EQ(errors[1], 2.0);
  EXPECT_DOUBLE_EQ(errors[2], 2.0);
  // Mismatched lengths: truncated to the shorter.
  EXPECT_EQ(QErrors({1, 2}, {1}).size(), 1u);
}

TEST(MatrixTest, ZeroSizedGemmIsNoop) {
  Matrix a(0, 3);
  Matrix b(3, 2);
  Matrix out(0, 2);
  GemmAccumulate(a, b, out);  // must not crash
  EXPECT_EQ(out.rows(), 0);
}

TEST(MetricsTest, Rmse) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

TEST(LinearRegressionTest, RecoversLinearFunction) {
  common::Rng rng(13);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 200; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    const float b = static_cast<float>(rng.Uniform(-1, 1));
    xs.push_back({a, b});
    ys.push_back(3.0f * a - 2.0f * b + 0.5f);
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  LinearRegression model(1e-4);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  const float x[2] = {0.3f, -0.7f};
  EXPECT_NEAR(model.Predict(x), 3.0 * 0.3 + 2.0 * 0.7 + 0.5, 1e-2);
  EXPECT_GT(model.SizeBytes(), 0u);
}

TEST(LinearRegressionTest, HandlesDegenerateFeatures) {
  // Duplicated (collinear) columns: ridge regularization keeps the normal
  // equations solvable.
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 50; ++i) {
    const float a = static_cast<float>(i);
    xs.push_back({a, a});
    ys.push_back(2.0f * a);
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  LinearRegression model(1e-2);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  const float x[2] = {10.0f, 10.0f};
  EXPECT_NEAR(model.Predict(x), 20.0, 0.5);
}

TEST(LinearRegressionTest, SerializationRoundTrip) {
  std::vector<std::vector<float>> xs{{1, 2}, {3, 4}, {5, 7}, {2, 1}};
  std::vector<float> ys{1, 2, 3, 4};
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  LinearRegression model(0.1);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  std::vector<uint8_t> blob;
  ASSERT_TRUE(model.Serialize(&blob).ok());
  LinearRegression restored(99.0);
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  const float x[2] = {2.5f, 3.5f};
  EXPECT_FLOAT_EQ(restored.Predict(x), model.Predict(x));
}

TEST(GridSearchTest, FindsConfigurationOnSimpleProblem) {
  common::Rng rng(21);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 400; ++i) {
    const float a = static_cast<float>(rng.Uniform(0, 1));
    xs.push_back({a});
    ys.push_back(a > 0.5f ? 8.0f : 2.0f);
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  common::Rng split_rng(22);
  const TrainTestSplit split = SplitTrainTest(data, 0.8, split_rng);
  GbmGrid grid;
  grid.max_depth = {2, 4};
  grid.learning_rate = {0.2};
  grid.num_trees = {30};
  grid.min_samples_leaf = {5};
  const auto result_or = TuneGbm(split.train, split.test, grid);
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  EXPECT_EQ(result_or.value().configs_tried, 2);
  // A step function in log space: the tuned model should be accurate.
  EXPECT_LT(result_or.value().valid_mean_qerror, 1.5);
}

}  // namespace
}  // namespace qfcard::ml
