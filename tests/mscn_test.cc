#include "ml/mscn.h"

#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"

namespace qfcard::ml {
namespace {

using featurize::MscnSample;

MscnParams FastParams() {
  MscnParams p;
  p.hidden = 16;
  p.batch_size = 32;
  p.max_epochs = 60;
  p.max_steps = 3000;
  p.early_stopping_rounds = 0;
  return p;
}

TEST(MscnTest, PredictsWithEmptySets) {
  const Mscn model(3, 2, 4, FastParams());
  MscnSample sample;  // everything empty
  const float out = model.Predict(sample);
  EXPECT_TRUE(std::isfinite(out));
}

TEST(MscnTest, SizeBytesCountsAllFourMlps) {
  const MscnParams p = FastParams();
  const Mscn model(3, 2, 4, p);
  const int h = p.hidden;
  const size_t expected =
      ((3 * h + h) + (h * h + h) +   // table mlp
       (2 * h + h) + (h * h + h) +   // join mlp
       (4 * h + h) + (h * h + h) +   // pred mlp
       (3 * h * h + h) + (h * 1 + 1)) *  // out mlp
      sizeof(float);
  EXPECT_EQ(model.SizeBytes(), expected);
}

TEST(MscnTest, PoolingIsOrderInvariant) {
  const Mscn model(3, 2, 4, FastParams());
  MscnSample a;
  a.pred_vecs = {{1, 0, 0, 0.5f}, {0, 1, 0, 0.2f}};
  MscnSample b;
  b.pred_vecs = {{0, 1, 0, 0.2f}, {1, 0, 0, 0.5f}};
  EXPECT_FLOAT_EQ(model.Predict(a), model.Predict(b));
}

// Synthetic task: label = nonlinear function of the average of a designated
// feature over the predicate set. Average pooling preserves exactly this
// statistic, so the network must learn it (set sums are NOT recoverable
// through average pooling, mirroring the real MSCN's inductive bias).
TEST(MscnTest, LearnsSetRegression) {
  common::Rng rng(5);
  std::vector<MscnSample> samples;
  std::vector<float> labels;
  for (int i = 0; i < 1500; ++i) {
    MscnSample s;
    s.table_vecs = {{1.0f, 0.0f, 0.0f}};
    const int set_size = static_cast<int>(rng.UniformInt(1, 4));
    float sum = 0.0f;
    for (int k = 0; k < set_size; ++k) {
      const float payload = static_cast<float>(rng.Uniform(0, 1));
      s.pred_vecs.push_back({payload, 1.0f, 0.0f, 0.0f});
      sum += payload;
    }
    const float avg = sum / static_cast<float>(set_size);
    samples.push_back(std::move(s));
    labels.push_back(3.0f * avg * avg - avg);
  }
  Mscn model(3, 2, 4, FastParams());
  ASSERT_TRUE(model.Fit(samples, labels, nullptr, nullptr).ok());
  double se = 0.0;
  double var = 0.0;
  double mean = 0.0;
  for (const float y : labels) mean += y;
  mean /= static_cast<double>(labels.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double d = model.Predict(samples[i]) - labels[i];
    se += d * d;
    var += (labels[i] - mean) * (labels[i] - mean);
  }
  // Explains most of the variance.
  EXPECT_LT(se / var, 0.2);
}

TEST(MscnTest, FitValidatesInputs) {
  Mscn model(3, 2, 4, FastParams());
  std::vector<MscnSample> samples(2);
  std::vector<float> labels(3);
  EXPECT_FALSE(model.Fit(samples, labels, nullptr, nullptr).ok());
  samples.clear();
  labels.clear();
  EXPECT_FALSE(model.Fit(samples, labels, nullptr, nullptr).ok());
}

TEST(MscnTest, SerializationRoundTrip) {
  common::Rng rng(9);
  std::vector<MscnSample> samples;
  std::vector<float> labels;
  for (int i = 0; i < 150; ++i) {
    MscnSample s;
    s.table_vecs = {{1.0f, 0.0f, 0.0f}};
    s.pred_vecs.push_back({static_cast<float>(rng.Uniform(0, 1)), 1, 0, 0});
    samples.push_back(std::move(s));
    labels.push_back(static_cast<float>(rng.Uniform(0, 3)));
  }
  MscnParams p = FastParams();
  p.max_steps = 50;
  Mscn model(3, 2, 4, p);
  ASSERT_TRUE(model.Fit(samples, labels, nullptr, nullptr).ok());

  std::vector<uint8_t> blob;
  ASSERT_TRUE(model.Serialize(&blob).ok());
  Mscn restored(3, 2, 4, p);
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  for (size_t i = 0; i < samples.size(); i += 17) {
    EXPECT_FLOAT_EQ(restored.Predict(samples[i]), model.Predict(samples[i]));
  }
}

TEST(MscnTest, DeserializeRejectsDimensionMismatch) {
  MscnParams p = FastParams();
  const Mscn model(3, 2, 4, p);
  std::vector<uint8_t> blob;
  ASSERT_TRUE(model.Serialize(&blob).ok());
  Mscn other_dims(5, 2, 4, p);
  EXPECT_FALSE(other_dims.Deserialize(blob).ok());
}

TEST(MscnTest, EarlyStoppingReturns) {
  common::Rng rng(6);
  std::vector<MscnSample> samples;
  std::vector<float> labels;
  for (int i = 0; i < 200; ++i) {
    MscnSample s;
    s.table_vecs = {{1.0f, 0.0f, 0.0f}};
    s.pred_vecs.push_back({static_cast<float>(rng.Uniform(0, 1)), 0, 0, 0});
    samples.push_back(std::move(s));
    labels.push_back(static_cast<float>(rng.Normal()));  // noise
  }
  MscnParams p = FastParams();
  p.max_epochs = 500;
  p.max_steps = 1000000;
  p.early_stopping_rounds = 3;
  Mscn model(3, 2, 4, p);
  const std::vector<MscnSample> valid(samples.begin(), samples.begin() + 50);
  const std::vector<float> valid_labels(labels.begin(), labels.begin() + 50);
  ASSERT_TRUE(model.Fit(samples, labels, &valid, &valid_labels).ok());
}

}  // namespace
}  // namespace qfcard::ml
