#include "common/mutex.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace qfcard::common {
namespace {

// Runtime behavior of the annotated wrappers. Their static guarantees are
// checked separately: the try_compile gate in tests/CMakeLists.txt proves an
// unlocked GUARDED_BY access fails to build under Clang, so annotation rot
// breaks CI at configure time.

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // already held
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(FunctionRefTest, CallsLambdaWithCapture) {
  int captured = 7;
  // FunctionRef is non-owning: the callable must be a named object that
  // outlives the ref (binding a temporary lambda here would dangle).
  const auto adder = [&captured](int x) { return x + captured; };
  FunctionRef<int(int)> ref = adder;
  EXPECT_EQ(ref(3), 10);
}

TEST(FunctionRefTest, DefaultIsNull) {
  FunctionRef<void(int64_t)> ref;
  EXPECT_FALSE(static_cast<bool>(ref));
}

TEST(FunctionRefTest, WrapsStdFunction) {
  std::function<int(int)> f = [](int x) { return 2 * x; };
  FunctionRef<int(int)> ref = f;
  EXPECT_EQ(ref(21), 42);
}

TEST(FunctionRefTest, WrapsConstCallable) {
  const auto doubler = [](int x) { return 2 * x; };
  FunctionRef<int(int)> ref = doubler;
  EXPECT_EQ(ref(4), 8);
}

TEST(FunctionRefTest, MutatingCallableObservedThroughRef) {
  int calls = 0;
  auto body = [&calls](int64_t) { ++calls; };
  FunctionRef<void(int64_t)> ref = body;
  ref(0);
  ref(1);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace qfcard::common
