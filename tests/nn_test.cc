#include "ml/nn.h"

#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "ml/metrics.h"

namespace qfcard::ml {
namespace {

TEST(MlpTest, ForwardShapes) {
  common::Rng rng(1);
  internal::Mlp mlp;
  mlp.Init({3, 5, 2}, /*relu_last=*/false, rng);
  Matrix x(4, 3);
  for (float& v : x.data()) v = static_cast<float>(rng.Normal());
  const Matrix& out = mlp.Forward(x);
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_EQ(mlp.input_dim(), 3);
  EXPECT_EQ(mlp.output_dim(), 2);
  EXPECT_EQ(mlp.NumParams(), 3u * 5u + 5u + 5u * 2u + 2u);
}

TEST(MlpTest, PredictOneMatchesBatchForward) {
  common::Rng rng(2);
  internal::Mlp mlp;
  mlp.Init({4, 6, 1}, /*relu_last=*/false, rng);
  Matrix x(3, 4);
  for (float& v : x.data()) v = static_cast<float>(rng.Normal());
  const Matrix out = mlp.Forward(x);
  for (int r = 0; r < 3; ++r) {
    float single = 0.0f;
    mlp.PredictOne(x.Row(r), &single);
    EXPECT_NEAR(single, out.At(r, 0), 1e-5);
  }
}

// Numerical gradient check: analytic gradients from Backward match finite
// differences of the loss.
TEST(MlpTest, GradientCheck) {
  common::Rng rng(3);
  internal::Mlp mlp;
  mlp.Init({3, 4, 1}, /*relu_last=*/false, rng);
  Matrix x(5, 3);
  std::vector<float> y(5);
  for (float& v : x.data()) v = static_cast<float>(rng.Normal());
  for (float& v : y) v = static_cast<float>(rng.Normal());

  const auto loss = [&]() {
    const Matrix& out = mlp.Forward(x);
    double acc = 0.0;
    for (int i = 0; i < 5; ++i) {
      const double d = out.At(i, 0) - y[static_cast<size_t>(i)];
      acc += d * d;
    }
    return acc;
  };

  // Analytic gradients.
  const Matrix& out = mlp.Forward(x);
  Matrix grad(5, 1);
  for (int i = 0; i < 5; ++i) {
    grad.At(i, 0) = 2.0f * (out.At(i, 0) - y[static_cast<size_t>(i)]);
  }
  mlp.Backward(grad, /*need_input_grad=*/false);

  const double eps = 1e-3;
  for (int layer = 0; layer < mlp.num_layers(); ++layer) {
    Matrix& w = mlp.weight(layer);
    const Matrix analytic = mlp.weight_grad(layer);
    // Spot-check a handful of weights per layer.
    for (size_t i = 0; i < w.data().size(); i += std::max<size_t>(1, w.data().size() / 5)) {
      const float orig = w.data()[i];
      w.data()[i] = orig + static_cast<float>(eps);
      const double up = loss();
      w.data()[i] = orig - static_cast<float>(eps);
      const double down = loss();
      w.data()[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic.data()[i], numeric,
                  2e-2 * std::max(1.0, std::abs(numeric)))
          << "layer " << layer << " weight " << i;
    }
  }
}

TEST(FeedForwardNetTest, LearnsLinearFunction) {
  common::Rng rng(7);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 1500; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    const float b = static_cast<float>(rng.Uniform(-1, 1));
    xs.push_back({a, b});
    ys.push_back(2.0f * a - b + 1.0f);
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  NnParams params;
  params.hidden = {16};
  params.max_epochs = 250;
  params.max_steps = 3000;
  params.early_stopping_rounds = 0;
  FeedForwardNet model(params);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  EXPECT_LT(Rmse(model.PredictBatch(data.x), data.y), 0.12);
}

TEST(FeedForwardNetTest, LearnsNonlinearFunction) {
  common::Rng rng(8);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 2500; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    const float b = static_cast<float>(rng.Uniform(-1, 1));
    xs.push_back({a, b});
    ys.push_back(a * b);  // XOR-like interaction
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  NnParams params;
  params.hidden = {32, 16};
  params.max_epochs = 120;
  params.max_steps = 8000;
  params.early_stopping_rounds = 0;
  FeedForwardNet model(params);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  const double rmse = Rmse(model.PredictBatch(data.x), data.y);
  EXPECT_LT(rmse, 0.15);  // label sd is ~1/3; interaction must be learned
}

TEST(FeedForwardNetTest, EarlyStoppingUsesValidationSet) {
  common::Rng rng(9);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back({static_cast<float>(rng.Uniform(-1, 1))});
    ys.push_back(static_cast<float>(rng.Normal()));  // pure noise
  }
  const Dataset train = Dataset::FromVectors(xs, ys).value();
  const Dataset valid = train.Head(100);
  NnParams params;
  params.hidden = {16};
  params.max_epochs = 200;
  params.max_steps = 100000;
  params.early_stopping_rounds = 3;
  FeedForwardNet model(params);
  // On pure noise, validation stops improving quickly; Fit must return.
  ASSERT_TRUE(model.Fit(train, &valid).ok());
}

TEST(FeedForwardNetTest, SizeBytesMatchesParameterCount) {
  common::Rng rng(10);
  std::vector<std::vector<float>> xs{{1, 2, 3}};
  std::vector<float> ys{1};
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  NnParams params;
  params.hidden = {8, 4};
  params.max_epochs = 1;
  params.max_steps = 1;
  FeedForwardNet model(params);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());
  const size_t expected = (3 * 8 + 8 + 8 * 4 + 4 + 4 * 1 + 1) * sizeof(float);
  EXPECT_EQ(model.SizeBytes(), expected);
}

TEST(FeedForwardNetTest, SerializationRoundTrip) {
  common::Rng rng(11);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 300; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    xs.push_back({a, a * a});
    ys.push_back(a + 0.5f);
  }
  const Dataset data = Dataset::FromVectors(xs, ys).value();
  NnParams params;
  params.hidden = {12, 6};
  params.max_epochs = 10;
  params.max_steps = 100;
  FeedForwardNet model(params);
  ASSERT_TRUE(model.Fit(data, nullptr).ok());

  std::vector<uint8_t> blob;
  ASSERT_TRUE(model.Serialize(&blob).ok());
  FeedForwardNet restored;  // architecture comes from the blob
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  for (int i = 0; i < data.num_rows(); i += 29) {
    EXPECT_FLOAT_EQ(restored.Predict(data.x.Row(i)),
                    model.Predict(data.x.Row(i)));
  }
  EXPECT_EQ(restored.SizeBytes(), model.SizeBytes());
}

TEST(FeedForwardNetTest, DeserializeRejectsGarbage) {
  FeedForwardNet model;
  EXPECT_FALSE(model.Deserialize({9, 9, 9}).ok());
}

TEST(FeedForwardNetTest, EmptyTrainingSetRejected) {
  Dataset empty;
  FeedForwardNet model;
  EXPECT_FALSE(model.Fit(empty, nullptr).ok());
}

}  // namespace
}  // namespace qfcard::ml
