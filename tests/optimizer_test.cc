#include "optimizer/join_order.h"

#include <cmath>
#include <map>

#include "common/random.h"
#include "estimators/true_card.h"
#include "gtest/gtest.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan_executor.h"
#include "query/join_executor.h"
#include "test_util.h"

namespace qfcard::opt {
namespace {

using testutil::IntColumn;

// Chain schema: a -- b -- c with very different intermediate sizes.
//   a(id): 4 rows; b(a_id, c_id): 8 rows; c(id): 2 rows.
storage::Catalog MakeChainCatalog() {
  storage::Catalog cat;
  storage::Table a("a");
  QFCARD_CHECK_OK(a.AddColumn(IntColumn("id", {0, 1, 2, 3})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(a)));
  storage::Table b("b");
  QFCARD_CHECK_OK(
      b.AddColumn(IntColumn("a_id", {0, 0, 1, 1, 2, 2, 3, 3})));
  QFCARD_CHECK_OK(b.AddColumn(IntColumn("c_id", {0, 1, 0, 1, 0, 1, 0, 1})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(b)));
  storage::Table c("c");
  QFCARD_CHECK_OK(c.AddColumn(IntColumn("id", {0, 1})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(c)));
  return cat;
}

query::Query MakeChainQuery() {
  query::Query q;
  q.tables.push_back(query::TableRef{"a", "a"});
  q.tables.push_back(query::TableRef{"b", "b"});
  q.tables.push_back(query::TableRef{"c", "c"});
  // b.a_id = a.id ; b.c_id = c.id
  q.joins.push_back(
      query::JoinPredicate{query::ColumnRef{1, 0}, query::ColumnRef{0, 0}});
  q.joins.push_back(
      query::JoinPredicate{query::ColumnRef{1, 1}, query::ColumnRef{2, 0}});
  return q;
}

TEST(InducedSubQueryTest, ProjectsTablesJoinsAndPredicates) {
  query::Query q = MakeChainQuery();
  testutil::AddCompound(q, 0, {{{query::CmpOp::kGe, 1}}});  // on a.id, slot 0
  const auto sub_or = InducedSubQuery(q, 0b011);  // {a, b}
  ASSERT_TRUE(sub_or.ok());
  const query::Query& sub = sub_or.value();
  ASSERT_EQ(sub.tables.size(), 2u);
  EXPECT_EQ(sub.tables[0].name, "a");
  EXPECT_EQ(sub.tables[1].name, "b");
  ASSERT_EQ(sub.joins.size(), 1u);  // only a--b retained
  ASSERT_EQ(sub.predicates.size(), 1u);
  EXPECT_EQ(sub.predicates[0].col.table, 0);
}

TEST(InducedSubQueryTest, EmptyMaskRejected) {
  EXPECT_FALSE(InducedSubQuery(MakeChainQuery(), 0).ok());
}

TEST(JoinOrderOptimizerTest, PicksCheapSideFirst) {
  const query::Query q = MakeChainQuery();
  // Synthetic cardinalities: joining a⋈b first is expensive (1000), b⋈c
  // first is cheap (10); the full join is 100 either way.
  const SubsetCardFn card_of =
      [&](uint32_t mask) -> common::StatusOr<double> {
    static const std::map<uint32_t, double> cards{
        {0b001, 4},   {0b010, 8},    {0b100, 2},
        {0b011, 1000}, {0b110, 10},  {0b111, 100},
    };
    const auto it = cards.find(mask);
    if (it == cards.end()) {
      return common::Status::InvalidArgument("unexpected mask");
    }
    return it->second;
  };
  const auto plan_or = JoinOrderOptimizer::Optimize(q, card_of);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status();
  const JoinPlan& plan = plan_or.value();
  // Best plan: (b ⋈ c) ⋈ a with C_out = 10 + 100.
  EXPECT_DOUBLE_EQ(PlanCostCout(plan), 110.0);
  // The root joins {b,c} with a; the inner join must not contain 'a'.
  const JoinPlan::Node& root = plan.nodes[static_cast<size_t>(plan.root)];
  const uint32_t inner_mask =
      plan.nodes[static_cast<size_t>(root.left)].table >= 0
          ? plan.nodes[static_cast<size_t>(root.right)].mask
          : plan.nodes[static_cast<size_t>(root.left)].mask;
  EXPECT_EQ(inner_mask, 0b110u);
}

TEST(JoinOrderOptimizerTest, DisconnectedGraphRejected) {
  query::Query q = MakeChainQuery();
  q.joins.clear();  // no join predicates at all
  const SubsetCardFn card_of = [](uint32_t) -> common::StatusOr<double> {
    return 1.0;
  };
  EXPECT_FALSE(JoinOrderOptimizer::Optimize(q, card_of).ok());
}

TEST(JoinOrderOptimizerTest, SingleTablePlan) {
  query::Query q;
  q.tables.push_back(query::TableRef{"a", "a"});
  const SubsetCardFn card_of = [](uint32_t) -> common::StatusOr<double> {
    return 4.0;
  };
  const auto plan_or = JoinOrderOptimizer::Optimize(q, card_of);
  ASSERT_TRUE(plan_or.ok());
  EXPECT_DOUBLE_EQ(PlanCostCout(plan_or.value()), 0.0);  // no joins
}

TEST(CostModelTest, HashCostCountsInputsAndOutput) {
  JoinPlan plan;
  plan.nodes.push_back(JoinPlan::Node{-1, -1, 0, 0b01, 10});
  plan.nodes.push_back(JoinPlan::Node{-1, -1, 1, 0b10, 20});
  plan.nodes.push_back(JoinPlan::Node{0, 1, -1, 0b11, 5});
  plan.root = 2;
  EXPECT_DOUBLE_EQ(PlanCost(plan, CostModelKind::kCout), 5.0);
  EXPECT_DOUBLE_EQ(PlanCost(plan, CostModelKind::kHash), 35.0);
}

TEST(CostModelTest, ReannotateReplacesEstimates) {
  JoinPlan plan;
  plan.nodes.push_back(JoinPlan::Node{-1, -1, 0, 0b01, 10});
  plan.nodes.push_back(JoinPlan::Node{-1, -1, 1, 0b10, 20});
  plan.nodes.push_back(JoinPlan::Node{0, 1, -1, 0b11, 999});
  plan.root = 2;
  const SubsetCardFn card_of = [](uint32_t mask) -> common::StatusOr<double> {
    return mask == 0b11 ? 7.0 : 1.0;
  };
  const auto re_or = ReannotatePlan(plan, card_of);
  ASSERT_TRUE(re_or.ok());
  EXPECT_DOUBLE_EQ(PlanCostCout(re_or.value()), 7.0);
}

// Builds a random valid bushy plan over the query's tables (joining only
// connected pieces) and returns its C_out under `card_of`. Used to verify
// DP optimality: no random plan may beat the optimizer.
common::StatusOr<double> RandomPlanCost(const query::Query& q,
                                        const SubsetCardFn& card_of,
                                        common::Rng& rng) {
  struct Piece {
    uint32_t mask;
    double rows;
  };
  std::vector<Piece> pieces;
  for (size_t t = 0; t < q.tables.size(); ++t) {
    const uint32_t mask = 1u << t;
    QFCARD_ASSIGN_OR_RETURN(const double rows, card_of(mask));
    pieces.push_back({mask, rows});
  }
  const auto connected = [&](uint32_t a, uint32_t b) {
    for (const query::JoinPredicate& j : q.joins) {
      const uint32_t m = (1u << j.left.table) | (1u << j.right.table);
      if ((m & a) != 0 && (m & b) != 0 && (m & a) != m && (m & b) != m) {
        return true;
      }
    }
    return false;
  };
  double cost = 0.0;
  int guard = 0;
  while (pieces.size() > 1 && ++guard < 1000) {
    const size_t i = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pieces.size()) - 1));
    const size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pieces.size()) - 1));
    if (i == j || !connected(pieces[i].mask, pieces[j].mask)) continue;
    const uint32_t merged = pieces[i].mask | pieces[j].mask;
    QFCARD_ASSIGN_OR_RETURN(const double rows, card_of(merged));
    cost += rows;
    pieces[std::min(i, j)] = {merged, rows};
    pieces.erase(pieces.begin() + static_cast<long>(std::max(i, j)));
  }
  if (pieces.size() != 1) {
    return common::Status::Internal("random plan construction stuck");
  }
  return cost;
}

class DpOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpOptimalityTest, NoRandomPlanBeatsTheOptimizer) {
  common::Rng rng(GetParam());
  // 4-table chain a - b - c - d with random subset cardinalities.
  query::Query q;
  for (const char* name : {"a", "b", "c", "d"}) {
    q.tables.push_back(query::TableRef{name, name});
  }
  for (int t = 0; t + 1 < 4; ++t) {
    q.joins.push_back(query::JoinPredicate{query::ColumnRef{t, 0},
                                           query::ColumnRef{t + 1, 0}});
  }
  std::map<uint32_t, double> cards;
  for (uint32_t mask = 1; mask < 16; ++mask) {
    cards[mask] = std::floor(rng.Uniform(1, 1000));
  }
  const SubsetCardFn card_of = [&](uint32_t mask) -> common::StatusOr<double> {
    return cards.at(mask);
  };
  const auto plan_or = JoinOrderOptimizer::Optimize(q, card_of);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status();
  const double dp_cost = PlanCostCout(plan_or.value());
  for (int iter = 0; iter < 30; ++iter) {
    const auto random_or = RandomPlanCost(q, card_of, rng);
    ASSERT_TRUE(random_or.ok());
    EXPECT_GE(random_or.value(), dp_cost - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOptimalityTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(PlanExecutorTest, ResultMatchesJoinExecutor) {
  const storage::Catalog cat = MakeChainCatalog();
  query::Query q = MakeChainQuery();
  testutil::AddCompound(q, 0, {{{query::CmpOp::kGe, 1}}});  // a.id >= 1
  const est::TrueCardEstimator oracle(&cat);
  const SubsetCardFn card_of =
      [&](uint32_t mask) -> common::StatusOr<double> {
    QFCARD_ASSIGN_OR_RETURN(const query::Query sub, InducedSubQuery(q, mask));
    return oracle.EstimateCard(sub);
  };
  const auto plan_or = JoinOrderOptimizer::Optimize(q, card_of);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status();
  const auto exec_or = ExecutePlan(cat, q, plan_or.value());
  ASSERT_TRUE(exec_or.ok()) << exec_or.status();
  EXPECT_EQ(exec_or.value().result_rows,
            query::JoinExecutor::Count(cat, q).value());
  EXPECT_GE(exec_or.value().seconds, 0.0);
  EXPECT_GT(exec_or.value().intermediate_rows, 0.0);
}

TEST(PlanExecutorTest, TrueCostOptimalPlanNotWorseThanAlternatives) {
  // With true cardinalities the optimizer's plan has minimal realized
  // C_out among all DP-explored plans (sanity of the DP itself).
  const storage::Catalog cat = MakeChainCatalog();
  const query::Query q = MakeChainQuery();
  const est::TrueCardEstimator oracle(&cat);
  const SubsetCardFn card_of =
      [&](uint32_t mask) -> common::StatusOr<double> {
    QFCARD_ASSIGN_OR_RETURN(const query::Query sub, InducedSubQuery(q, mask));
    return oracle.EstimateCard(sub);
  };
  const auto plan_or = JoinOrderOptimizer::Optimize(q, card_of);
  ASSERT_TRUE(plan_or.ok());
  const auto exec_or = ExecutePlan(cat, q, plan_or.value());
  ASSERT_TRUE(exec_or.ok());
  // Realized intermediate rows equal the estimated C_out because the
  // estimates are exact.
  EXPECT_DOUBLE_EQ(exec_or.value().intermediate_rows,
                   PlanCostCout(plan_or.value()));
}

}  // namespace
}  // namespace qfcard::opt
