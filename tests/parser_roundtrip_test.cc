// Parser round-trip property: for any accepted query q,
//   ToSql(q) parses back to a structurally identical query, and
//   ToSql is a fixed point from the first rendering on.
//
// The fuzzer (src/testing/query_fuzzer.cc) checks this on random generated
// queries; here the same property runs over hand-picked tricky inputs —
// mixed AND/OR nesting, operator zoo, quoted string literals, LIKE
// desugaring, joins, GROUP BY, aliases, odd whitespace and keyword casing.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/normalize.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/table.h"
#include "test_util.h"

namespace qfcard::query {
namespace {

storage::Catalog TrickyCatalog() {
  storage::Catalog catalog;
  {
    storage::Table t("t");
    QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("a", {1, 2, 3, 4, 5})));
    QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("b", {10, 20, 30, 40, 50})));
    QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("c", {-5, 0, 5, 10, 15})));
    QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("d", {7, 7, 8, 9, 9})));
    storage::Dictionary dict = storage::Dictionary::FromValues(
        {"alpha", "beta", "delta", "gamma"});
    storage::Column s("s", storage::ColumnType::kDictString);
    for (const char* v : {"alpha", "beta", "gamma", "delta", "alpha"}) {
      s.Append(static_cast<double>(dict.Code(v).value()));
    }
    s.SetDictionary(std::move(dict));
    QFCARD_CHECK_OK(t.AddColumn(std::move(s)));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(t)));
  }
  {
    storage::Table u("u");
    QFCARD_CHECK_OK(u.AddColumn(testutil::IntColumn("id", {1, 2, 3})));
    QFCARD_CHECK_OK(u.AddColumn(testutil::IntColumn("v", {100, 200, 300})));
    QFCARD_CHECK_OK(catalog.AddTable(std::move(u)));
  }
  return catalog;
}

// The 55 tricky inputs. Each must parse; the round-trip property is then
// asserted on the parsed (normalized) form.
const std::vector<std::string>& TrickyQueries() {
  static const std::vector<std::string>* queries = new std::vector<std::string>{
      // Bare scans, casing, whitespace.
      "SELECT count(*) FROM t;",
      "select COUNT(*) from t",
      "  SELECT   count(*)   FROM   t   ;  ",
      "SELECT count(*) FROM t AS t;",
      // Single comparisons, full operator zoo.
      "SELECT count(*) FROM t WHERE a = 3;",
      "SELECT count(*) FROM t WHERE a != 3;",
      "SELECT count(*) FROM t WHERE a <> 3;",
      "SELECT count(*) FROM t WHERE a < 3;",
      "SELECT count(*) FROM t WHERE a <= 3;",
      "SELECT count(*) FROM t WHERE a > 3;",
      "SELECT count(*) FROM t WHERE a >= 3;",
      "SELECT count(*) FROM t WHERE a = -2;",
      "SELECT count(*) FROM t WHERE c >= -5 AND c <= 15;",
      // Conjunctions across attributes.
      "SELECT count(*) FROM t WHERE a >= 2 AND b < 40;",
      "SELECT count(*) FROM t WHERE a >= 1 AND b >= 10 AND c >= 0 AND d = 7;",
      "SELECT count(*) FROM t WHERE t.a = 1 AND t.b = 10;",
      // Range + not-equals mixes on one attribute.
      "SELECT count(*) FROM t WHERE a >= 1 AND a <= 4 AND a != 2;",
      "SELECT count(*) FROM t WHERE a > 1 AND a < 5 AND a != 2 AND a != 3;",
      // Disjunctions, IN-list spellings (OR of equalities).
      "SELECT count(*) FROM t WHERE a = 1 OR a = 3;",
      "SELECT count(*) FROM t WHERE (a = 1 OR a = 3 OR a = 5);",
      "SELECT count(*) FROM t WHERE a = 1 OR a = 2 OR a = 3 OR a = 4;",
      // Mixed AND/OR nesting: AND binds tighter.
      "SELECT count(*) FROM t WHERE a >= 1 AND a <= 2 OR a >= 4 AND a <= 5;",
      "SELECT count(*) FROM t WHERE (a >= 1 AND a <= 2) OR (a >= 4 AND a <= 5);",
      "SELECT count(*) FROM t WHERE a < 2 OR a > 4 OR a = 3;",
      "SELECT count(*) FROM t WHERE (a < 2 OR a > 4) AND a != 0;",
      "SELECT count(*) FROM t WHERE ((a = 1) OR (a >= 3 AND a <= 4));",
      "SELECT count(*) FROM t WHERE (((a >= 1 AND a <= 5)));",
      // Distribution of OR over AND (DNF expansion).
      "SELECT count(*) FROM t WHERE (a = 1 OR a = 2) AND a != 2;",
      "SELECT count(*) FROM t WHERE (a <= 2 OR a >= 4) AND (a != 1 OR a != 5);",
      // Multiple compound predicates on different attributes.
      "SELECT count(*) FROM t WHERE (a = 1 OR a = 2) AND (b = 10 OR b = 20);",
      "SELECT count(*) FROM t WHERE (a < 3 OR a > 4) AND b >= 10 AND (c = 0 OR c = 5);",
      // Quoted string literals against the dictionary column.
      "SELECT count(*) FROM t WHERE s = 'alpha';",
      "SELECT count(*) FROM t WHERE s != 'beta';",
      "SELECT count(*) FROM t WHERE s = 'alpha' OR s = 'gamma';",
      "SELECT count(*) FROM t WHERE s >= 'beta' AND s <= 'delta';",
      "SELECT count(*) FROM t WHERE s = 'alpha' AND a <= 3;",
      // LIKE desugars to dictionary-code ranges / equality disjunctions.
      "SELECT count(*) FROM t WHERE s LIKE 'alp%';",
      "SELECT count(*) FROM t WHERE s LIKE '%';",
      "SELECT count(*) FROM t WHERE s LIKE 'gamma';",
      // Prefix ranges whose bounds land on interior dictionary codes
      // (Dictionary::PrefixCodeRange): single-char, multi-char, and a
      // full-value prefix, plus LIKE under conjunction and casing.
      "SELECT count(*) FROM t WHERE s LIKE 'b%';",
      "SELECT count(*) FROM t WHERE s LIKE 'de%';",
      "SELECT count(*) FROM t WHERE s LIKE 'beta%';",
      "SELECT count(*) FROM t WHERE s like 'b%' AND a >= 2;",
      "SELECT count(*) FROM t WHERE a <= 4 AND s LIKE 'del%';",
      // GROUP BY.
      "SELECT count(*) FROM t GROUP BY a;",
      "SELECT count(*) FROM t GROUP BY a, b;",
      "SELECT count(*) FROM t WHERE a >= 2 GROUP BY d;",
      "SELECT count(*) FROM t WHERE (a = 1 OR a = 4) AND b <= 40 GROUP BY d, a;",
      // Joins, aliases, join + filter + group mixes.
      "SELECT count(*) FROM t, u WHERE t.a = u.id;",
      "SELECT count(*) FROM t AS t, u AS u WHERE t.a = u.id;",
      "SELECT count(*) FROM t, u WHERE t.a = u.id AND u.v >= 200;",
      "SELECT count(*) FROM t, u WHERE t.a = u.id AND (t.b = 10 OR t.b = 30);",
      "SELECT count(*) FROM t, u WHERE t.a = u.id AND t.d = 7 AND u.v != 100;",
      "SELECT count(*) FROM t, u WHERE t.a = u.id GROUP BY t.d;",
      "SELECT count(*) FROM t, u WHERE t.a = u.id AND (u.v = 100 OR u.v = 300) GROUP BY u.id;",
  };
  return *queries;
}

TEST(ParserRoundTripTest, TrickyQueryCorpus) {
  const storage::Catalog catalog = TrickyCatalog();
  const std::vector<std::string>& queries = TrickyQueries();
  ASSERT_EQ(queries.size(), 55u);
  for (const std::string& sql : queries) {
    SCOPED_TRACE(sql);
    const auto q1 = ParseQuery(sql, catalog);
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    const auto rendered = QueryToSql(q1.value(), catalog);
    ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
    const auto q2 = ParseQuery(rendered.value(), catalog);
    ASSERT_TRUE(q2.ok()) << "re-parse of \"" << rendered.value()
                         << "\" failed: " << q2.status().ToString();
    EXPECT_TRUE(q2.value() == q1.value())
        << "round trip changed the query; rendered: " << rendered.value();
    const auto rendered2 = QueryToSql(q2.value(), catalog);
    ASSERT_TRUE(rendered2.ok());
    EXPECT_EQ(rendered2.value(), rendered.value())
        << "ToSql is not a fixed point";
  }
}

TEST(ParserRoundTripTest, EquivalentSpellingsNormalizeIdentically) {
  const storage::Catalog catalog = TrickyCatalog();
  const std::pair<const char*, const char*> pairs[] = {
      {"SELECT count(*) FROM t WHERE a != 3;",
       "SELECT count(*) FROM t WHERE a <> 3;"},
      {"select count(*) from t where a = 1 and b = 10;",
       "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 10;"},
      {"SELECT count(*) FROM t WHERE (a = 1 OR a = 3);",
       "SELECT count(*) FROM t WHERE a = 1 OR a = 3;"},
  };
  for (const auto& [left, right] : pairs) {
    SCOPED_TRACE(std::string(left) + " vs " + right);
    const auto ql = ParseQuery(left, catalog);
    const auto qr = ParseQuery(right, catalog);
    ASSERT_TRUE(ql.ok() && qr.ok());
    EXPECT_TRUE(ql.value() == qr.value());
  }
}

}  // namespace
}  // namespace qfcard::query
