#include "query/parser.h"

#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/normalize.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace qfcard::query {
namespace {

using testutil::IntColumn;

TEST(ParserTest, MinimalSelect) {
  const auto raw_or = ParseSql("SELECT count(*) FROM t");
  ASSERT_TRUE(raw_or.ok()) << raw_or.status();
  const RawQuery& raw = raw_or.value();
  ASSERT_EQ(raw.tables.size(), 1u);
  EXPECT_EQ(raw.tables[0].name, "t");
  EXPECT_FALSE(raw.has_where);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseSql("select COUNT ( * ) from t;").ok());
}

TEST(ParserTest, TableAliases) {
  const auto raw_or =
      ParseSql("SELECT count(*) FROM title t, cast_info AS ci");
  ASSERT_TRUE(raw_or.ok());
  const RawQuery& raw = raw_or.value();
  ASSERT_EQ(raw.tables.size(), 2u);
  EXPECT_EQ(raw.tables[0].alias, "t");
  EXPECT_EQ(raw.tables[1].alias, "ci");
}

TEST(ParserTest, WherePrecedenceAndBindsTighterThanOr) {
  const auto raw_or =
      ParseSql("SELECT count(*) FROM t WHERE a > 1 AND a < 5 OR a = 9");
  ASSERT_TRUE(raw_or.ok());
  const BoolExpr& where = raw_or.value().where;
  ASSERT_EQ(where.kind, BoolExpr::Kind::kOr);
  ASSERT_EQ(where.children.size(), 2u);
  EXPECT_EQ(where.children[0].kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(where.children[1].kind, BoolExpr::Kind::kLeaf);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const auto raw_or =
      ParseSql("SELECT count(*) FROM t WHERE a > 1 AND (a < 5 OR a = 9)");
  ASSERT_TRUE(raw_or.ok());
  const BoolExpr& where = raw_or.value().where;
  ASSERT_EQ(where.kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(where.children[1].kind, BoolExpr::Kind::kOr);
}

TEST(ParserTest, AllComparisonOperators) {
  const auto raw_or = ParseSql(
      "SELECT count(*) FROM t WHERE a = 1 AND b != 2 AND c <> 3 AND d < 4 "
      "AND e <= 5 AND f > 6 AND g >= 7");
  ASSERT_TRUE(raw_or.ok()) << raw_or.status();
  EXPECT_EQ(raw_or.value().where.children.size(), 7u);
}

TEST(ParserTest, NegativeAndDecimalLiterals) {
  const auto raw_or =
      ParseSql("SELECT count(*) FROM t WHERE a > -2.5 AND b < 1e3");
  ASSERT_TRUE(raw_or.ok()) << raw_or.status();
  const BoolExpr& where = raw_or.value().where;
  EXPECT_DOUBLE_EQ(where.children[0].leaf.num, -2.5);
  EXPECT_DOUBLE_EQ(where.children[1].leaf.num, 1000.0);
}

TEST(ParserTest, StringLiterals) {
  const auto raw_or =
      ParseSql("SELECT count(*) FROM orders WHERE o_orderstatus = 'P'");
  ASSERT_TRUE(raw_or.ok());
  const BoolExpr& where = raw_or.value().where;
  EXPECT_TRUE(where.leaf.is_string);
  EXPECT_EQ(where.leaf.str, "P");
}

TEST(ParserTest, JoinPredicateDetected) {
  const auto raw_or = ParseSql(
      "SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 3");
  ASSERT_TRUE(raw_or.ok());
  const BoolExpr& where = raw_or.value().where;
  ASSERT_EQ(where.kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(where.children[0].kind, BoolExpr::Kind::kJoin);
  EXPECT_EQ(where.children[0].join.left, "a.id");
  EXPECT_EQ(where.children[0].join.right, "b.a_id");
}

TEST(ParserTest, NonEquiJoinRejected) {
  EXPECT_EQ(ParseSql("SELECT count(*) FROM a, b WHERE a.id < b.id")
                .status()
                .code(),
            common::StatusCode::kUnimplemented);
}

TEST(ParserTest, GroupBy) {
  const auto raw_or =
      ParseSql("SELECT count(*) FROM t WHERE a > 1 GROUP BY b, c");
  ASSERT_TRUE(raw_or.ok());
  ASSERT_EQ(raw_or.value().group_by.size(), 2u);
  EXPECT_EQ(raw_or.value().group_by[0], "b");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT count(*) FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT count(*) FROM t WHERE a >").ok());
  EXPECT_FALSE(ParseSql("SELECT count(*) FROM t WHERE a > 'x").ok());
  EXPECT_FALSE(ParseSql("SELECT count(*) FROM t WHERE (a > 1").ok());
  EXPECT_FALSE(ParseSql("SELECT count(*) FROM t extra junk").ok());
}

// ---------------------------------------------------------------------------
// Binding + normalization
// ---------------------------------------------------------------------------

storage::Catalog MakeCatalogWithStrings() {
  storage::Catalog cat;
  storage::Table t("orders");
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("price", {10, 20, 30, 40, 50})));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("qty", {1, 2, 3, 4, 5})));
  storage::Dictionary dict =
      storage::Dictionary::FromValues({"F", "O", "P"});
  storage::Column status("status", storage::ColumnType::kDictString);
  for (const char* s : {"P", "O", "F", "P", "O"}) {
    status.Append(static_cast<double>(dict.Code(s).value()));
  }
  status.SetDictionary(std::move(dict));
  QFCARD_CHECK_OK(t.AddColumn(std::move(status)));
  QFCARD_CHECK_OK(cat.AddTable(std::move(t)));
  return cat;
}

TEST(NormalizeTest, BindsSimpleConjunction) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE price >= 20 AND qty < 4", cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const Query& q = q_or.value();
  EXPECT_EQ(q.NumAttributes(), 2);
  EXPECT_TRUE(q.IsConjunctive());
}

TEST(NormalizeTest, MergesMultipleConjunctsOnOneAttribute) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE price >= 20 AND price <= 40 AND "
      "price <> 30",
      cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const Query& q = q_or.value();
  ASSERT_EQ(q.predicates.size(), 1u);
  ASSERT_EQ(q.predicates[0].disjuncts.size(), 1u);
  EXPECT_EQ(q.predicates[0].disjuncts[0].preds.size(), 3u);
}

TEST(NormalizeTest, PerAttributeDisjunctionToDnf) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE "
      "(price >= 10 AND price <= 20 OR price >= 40) AND qty > 1",
      cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const Query& q = q_or.value();
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0].disjuncts.size(), 2u);
  EXPECT_EQ(q.predicates[1].disjuncts.size(), 1u);
}

TEST(NormalizeTest, RejectsCrossAttributeDisjunction) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  EXPECT_EQ(ParseQuery(
                "SELECT count(*) FROM orders WHERE price > 30 OR qty < 2", cat)
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, StringEqualityUsesDictionaryCode) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE status = 'P'", cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const SimplePredicate& p = q_or.value().predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.op, CmpOp::kEq);
  EXPECT_EQ(p.value, 2.0);  // codes: F=0, O=1, P=2
}

TEST(NormalizeTest, MissingStringEqualityMatchesNothing) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE status = 'ZZZ'", cat);
  ASSERT_TRUE(q_or.ok());
  const SimplePredicate& p = q_or.value().predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.op, CmpOp::kEq);
  EXPECT_EQ(p.value, -1.0);  // no code is -1 -> selects nothing
}

TEST(NormalizeTest, StringRangeMapsToCodeRange) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  // 'G' is absent; values >= 'G' are O(1) and P(2), i.e. code >= 1.
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE status >= 'G'", cat);
  ASSERT_TRUE(q_or.ok());
  const SimplePredicate& p = q_or.value().predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.op, CmpOp::kGe);
  EXPECT_EQ(p.value, 1.0);
}

TEST(NormalizeTest, StringLessThanMapsToLowerBound) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  // status < 'P' keeps F(0) and O(1): op kLt with lower-bound code 2.
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE status < 'P'", cat);
  ASSERT_TRUE(q_or.ok());
  const SimplePredicate& p = q_or.value().predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.op, CmpOp::kLt);
  EXPECT_EQ(p.value, 2.0);
}

TEST(NormalizeTest, UnknownColumnRejected) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM orders WHERE nope > 1", cat)
                .status()
                .code(),
            common::StatusCode::kNotFound);
}

TEST(NormalizeTest, StringComparedToNumericColumnRejected) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM orders WHERE price = 'x'", cat)
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, GroupByBound) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE price > 10 GROUP BY status", cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  ASSERT_EQ(q_or.value().group_by.size(), 1u);
  EXPECT_EQ(q_or.value().group_by[0].column, 2);
}

TEST(NormalizeTest, LikePrefixBindsToCodeRange) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  // Dictionary: F=0, O=1, P=2. 'O%' keeps exactly code 1: [1, 2).
  const auto q_or =
      ParseQuery("SELECT count(*) FROM orders WHERE status LIKE 'O%'", cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const ConjunctiveClause& clause = q_or.value().predicates[0].disjuncts[0];
  ASSERT_EQ(clause.preds.size(), 2u);
  EXPECT_EQ(clause.preds[0].op, CmpOp::kGe);
  EXPECT_EQ(clause.preds[0].value, 1.0);
  EXPECT_EQ(clause.preds[1].op, CmpOp::kLt);
  EXPECT_EQ(clause.preds[1].value, 2.0);
}

TEST(NormalizeTest, LikeWithoutWildcardIsEquality) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or =
      ParseQuery("SELECT count(*) FROM orders WHERE status LIKE 'P'", cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const SimplePredicate& p = q_or.value().predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.op, CmpOp::kEq);
  EXPECT_EQ(p.value, 2.0);
}

TEST(NormalizeTest, LikePercentOnlyMatchesAll) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or =
      ParseQuery("SELECT count(*) FROM orders WHERE status LIKE '%'", cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const SimplePredicate& p = q_or.value().predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.op, CmpOp::kGe);
  EXPECT_EQ(p.value, 0.0);
}

TEST(NormalizeTest, LikeCountMatchesStringSemantics) {
  // Multi-character dictionary: prefix ranges must count exactly.
  storage::Catalog cat;
  storage::Table t("people");
  std::vector<std::string> names{"alice", "albert", "bob",
                                 "alfred", "carol", "al"};
  storage::Dictionary dict = storage::Dictionary::FromValues(names);
  storage::Column name("name", storage::ColumnType::kDictString);
  for (const std::string& n : names) {
    name.Append(static_cast<double>(dict.Code(n).value()));
  }
  name.SetDictionary(std::move(dict));
  QFCARD_CHECK_OK(t.AddColumn(std::move(name)));
  QFCARD_CHECK_OK(cat.AddTable(std::move(t)));
  const storage::Table& people = *cat.GetTable("people").value();

  const auto count_like = [&](const std::string& pattern) {
    const auto q_or = ParseQuery(
        "SELECT count(*) FROM people WHERE name LIKE '" + pattern + "'", cat);
    QFCARD_CHECK_OK(q_or.status());
    return query::Executor::Count(people, q_or.value()).value();
  };
  EXPECT_EQ(count_like("al%"), 4);    // al, albert, alfred, alice
  EXPECT_EQ(count_like("ali%"), 1);   // alice
  EXPECT_EQ(count_like("b%"), 1);     // bob
  EXPECT_EQ(count_like("z%"), 0);
  EXPECT_EQ(count_like("%"), 6);
  EXPECT_EQ(count_like("al"), 1);     // exact match
}

TEST(NormalizeTest, LikeKeywordIsCaseInsensitive) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  EXPECT_TRUE(
      ParseQuery("SELECT count(*) FROM orders WHERE status like 'O%'", cat)
          .ok());
  EXPECT_TRUE(
      ParseQuery("SELECT count(*) FROM orders WHERE status LiKe 'O%'", cat)
          .ok());
}

TEST(NormalizeTest, DnfExpansionCapRejectsHugeDisjunctions) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  // 300 OR'd equality predicates on one attribute exceed the 256-clause cap.
  std::string sql = "SELECT count(*) FROM orders WHERE (price = 0";
  for (int i = 1; i < 300; ++i) {
    sql += " OR price = " + std::to_string(i);
  }
  sql += ")";
  EXPECT_EQ(ParseQuery(sql, cat).status().code(),
            common::StatusCode::kOutOfRange);
}

TEST(NormalizeTest, NestedParenthesesNormalize) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE "
      "((price >= 10 AND (price <= 30 OR price >= 40)) AND qty > 1)",
      cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const Query& q = q_or.value();
  ASSERT_EQ(q.predicates.size(), 2u);
  // (p>=10) AND (p<=30 OR p>=40) distributes into 2 clauses of 2 preds.
  EXPECT_EQ(q.predicates[0].disjuncts.size(), 2u);
  EXPECT_EQ(q.predicates[0].disjuncts[0].preds.size(), 2u);
}

TEST(NormalizeTest, LikeRejectsUnsupportedPatterns) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM orders WHERE status LIKE '%P'",
                       cat)
                .status()
                .code(),
            common::StatusCode::kUnimplemented);
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM orders WHERE status LIKE 'P_'",
                       cat)
                .status()
                .code(),
            common::StatusCode::kUnimplemented);
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM orders WHERE price LIKE 'P%'",
                       cat)
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, LikeInsideDisjunction) {
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE (status LIKE 'F%' OR status = 'P')",
      cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  EXPECT_EQ(q_or.value().predicates[0].disjuncts.size(), 2u);
}

TEST(NormalizeTest, PaperMixedQueryExampleParses) {
  // Shape of the Section 3.3 TPC-H example, adapted to this schema.
  const storage::Catalog cat = MakeCatalogWithStrings();
  const auto q_or = ParseQuery(
      "SELECT count(*) FROM orders WHERE "
      "(price >= 10 AND price <= 20 AND price <> 15 OR "
      " price >= 40 AND price <= 50 AND price <> 45) AND "
      "(status = 'P' OR status = 'F') AND "
      "(qty > 1 AND qty < 5);",
      cat);
  ASSERT_TRUE(q_or.ok()) << q_or.status();
  const Query& q = q_or.value();
  EXPECT_EQ(q.predicates.size(), 3u);
  EXPECT_EQ(q.predicates[0].disjuncts.size(), 2u);
  EXPECT_EQ(q.predicates[1].disjuncts.size(), 2u);
  EXPECT_EQ(q.predicates[2].disjuncts.size(), 1u);
}

}  // namespace
}  // namespace qfcard::query
