#include "query/query.h"

#include "gtest/gtest.h"
#include "query/normalize.h"
#include "test_util.h"

namespace qfcard::query {
namespace {

using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::SingleTableQuery;
using testutil::SmallCatalog;
using testutil::SmallTable;

class EvalCmpTest : public ::testing::TestWithParam<
                        std::tuple<CmpOp, double, double, bool>> {};

TEST_P(EvalCmpTest, Evaluates) {
  const auto& [op, value, literal, expected] = GetParam();
  EXPECT_EQ(EvalCmp(op, value, literal), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EvalCmpTest,
    ::testing::Values(
        std::make_tuple(CmpOp::kEq, 5.0, 5.0, true),
        std::make_tuple(CmpOp::kEq, 5.0, 6.0, false),
        std::make_tuple(CmpOp::kNe, 5.0, 6.0, true),
        std::make_tuple(CmpOp::kNe, 5.0, 5.0, false),
        std::make_tuple(CmpOp::kLt, 4.0, 5.0, true),
        std::make_tuple(CmpOp::kLt, 5.0, 5.0, false),
        std::make_tuple(CmpOp::kLe, 5.0, 5.0, true),
        std::make_tuple(CmpOp::kLe, 6.0, 5.0, false),
        std::make_tuple(CmpOp::kGt, 6.0, 5.0, true),
        std::make_tuple(CmpOp::kGt, 5.0, 5.0, false),
        std::make_tuple(CmpOp::kGe, 5.0, 5.0, true),
        std::make_tuple(CmpOp::kGe, 4.0, 5.0, false)));

TEST(CmpOpTest, ToStringRoundtripNames) {
  EXPECT_STREQ(CmpOpToString(CmpOp::kEq), "=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kNe), "<>");
  EXPECT_STREQ(CmpOpToString(CmpOp::kLe), "<=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kGe), ">=");
}

TEST(QueryTest, CountsPredicatesAndAttributes) {
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kGe, 2);
  AddCompound(q, 1,
              {{{CmpOp::kGe, 10}, {CmpOp::kLe, 50}}, {{CmpOp::kEq, 90}}});
  EXPECT_EQ(q.NumAttributes(), 2);
  EXPECT_EQ(q.NumSimplePredicates(), 4);
  EXPECT_FALSE(q.IsConjunctive());
}

TEST(QueryTest, ConjunctiveDetection) {
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kGe, 2);
  AddPredicate(q, 1, CmpOp::kLe, 50);
  EXPECT_TRUE(q.IsConjunctive());
}

TEST(EvalCompoundTest, DisjunctionSemantics) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  // a <= 2 OR a >= 8
  AddCompound(q, 0, {{{CmpOp::kLe, 2}}, {{CmpOp::kGe, 8}}});
  const CompoundPredicate& cp = q.predicates[0];
  int matches = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (EvalCompoundOnRow(t, r, cp)) ++matches;
  }
  EXPECT_EQ(matches, 5);  // {0,1,2,8,9}
}

TEST(EvalCompoundTest, ConjunctionWithinClause) {
  const storage::Table t = SmallTable();
  Query q = SingleTableQuery("small");
  // 3 <= a <= 7 AND a <> 5
  AddCompound(q, 0,
              {{{CmpOp::kGe, 3}, {CmpOp::kLe, 7}, {CmpOp::kNe, 5}}});
  int matches = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (EvalCompoundOnRow(t, r, q.predicates[0])) ++matches;
  }
  EXPECT_EQ(matches, 4);  // {3,4,6,7}
}

TEST(ValidateQueryTest, AcceptsWellFormed) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kGe, 2);
  EXPECT_TRUE(ValidateQuery(q, cat).ok());
}

TEST(ValidateQueryTest, RejectsNoTables) {
  const storage::Catalog cat = SmallCatalog();
  Query q;
  EXPECT_FALSE(ValidateQuery(q, cat).ok());
}

TEST(ValidateQueryTest, RejectsMixedAttributeCompound) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  CompoundPredicate cp;
  cp.col = ColumnRef{0, 0};
  ConjunctiveClause clause;
  clause.preds.push_back(SimplePredicate{ColumnRef{0, 0}, CmpOp::kGe, 1});
  clause.preds.push_back(SimplePredicate{ColumnRef{0, 1}, CmpOp::kLe, 5});
  cp.disjuncts.push_back(clause);
  q.predicates.push_back(cp);
  EXPECT_EQ(ValidateQuery(q, cat).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ValidateQueryTest, RejectsDuplicateCompoundPerAttribute) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  AddPredicate(q, 0, CmpOp::kGe, 1);
  AddPredicate(q, 0, CmpOp::kLe, 5);
  EXPECT_EQ(ValidateQuery(q, cat).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ValidateQueryTest, RejectsColumnOutOfRange) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  AddPredicate(q, 7, CmpOp::kGe, 1);
  EXPECT_EQ(ValidateQuery(q, cat).code(), common::StatusCode::kOutOfRange);
}

TEST(ValidateQueryTest, RejectsEmptyDisjunct) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  CompoundPredicate cp;
  cp.col = ColumnRef{0, 0};
  q.predicates.push_back(cp);
  EXPECT_EQ(ValidateQuery(q, cat).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(QueryToSqlTest, RendersMixedQuery) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kGe, 2}, {CmpOp::kLe, 8}}, {{CmpOp::kEq, 0}}});
  AddPredicate(q, 1, CmpOp::kLt, 50);
  const auto sql_or = QueryToSql(q, cat);
  ASSERT_TRUE(sql_or.ok()) << sql_or.status();
  EXPECT_EQ(sql_or.value(),
            "SELECT count(*) FROM small WHERE "
            "(a >= 2 AND a <= 8 OR a = 0) AND b < 50;");
}

TEST(QueryToSqlTest, RendersJoinQueriesWithQualifiedColumns) {
  storage::Catalog cat;
  storage::Table a("a");
  QFCARD_CHECK_OK(a.AddColumn(testutil::IntColumn("id", {0, 1})));
  QFCARD_CHECK_OK(a.AddColumn(testutil::IntColumn("x", {5, 6})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(a)));
  storage::Table b("b");
  QFCARD_CHECK_OK(b.AddColumn(testutil::IntColumn("a_id", {0, 0, 1})));
  QFCARD_CHECK_OK(cat.AddTable(std::move(b)));

  Query q;
  q.tables.push_back(TableRef{"a", "a"});
  q.tables.push_back(TableRef{"b", "b"});
  q.joins.push_back(JoinPredicate{ColumnRef{0, 0}, ColumnRef{1, 0}});
  CompoundPredicate cp;
  cp.col = ColumnRef{0, 1};
  ConjunctiveClause clause;
  clause.preds.push_back(SimplePredicate{cp.col, CmpOp::kGt, 5});
  cp.disjuncts.push_back(clause);
  q.predicates.push_back(cp);

  const auto sql_or = QueryToSql(q, cat);
  ASSERT_TRUE(sql_or.ok()) << sql_or.status();
  EXPECT_EQ(sql_or.value(),
            "SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 5;");
  // And it parses back.
  const auto reparsed_or = ParseQuery(sql_or.value(), cat);
  ASSERT_TRUE(reparsed_or.ok()) << reparsed_or.status();
  EXPECT_EQ(reparsed_or.value().joins.size(), 1u);
  EXPECT_EQ(reparsed_or.value().predicates.size(), 1u);
}

TEST(QueryToSqlTest, RendersDictionaryLiteralsAsStrings) {
  storage::Catalog cat;
  storage::Table t("t");
  storage::Dictionary dict = storage::Dictionary::FromValues({"x", "y"});
  storage::Column col("s", storage::ColumnType::kDictString);
  col.Append(0);
  col.Append(1);
  col.SetDictionary(std::move(dict));
  QFCARD_CHECK_OK(t.AddColumn(std::move(col)));
  QFCARD_CHECK_OK(cat.AddTable(std::move(t)));

  Query q = testutil::SingleTableQuery("t");
  testutil::AddPredicate(q, 0, CmpOp::kEq, 1);
  const auto sql_or = QueryToSql(q, cat);
  ASSERT_TRUE(sql_or.ok());
  EXPECT_EQ(sql_or.value(), "SELECT count(*) FROM t WHERE s = 'y';");
}

TEST(QueryToSqlTest, RoundTripsThroughParser) {
  const storage::Catalog cat = SmallCatalog();
  Query q = SingleTableQuery("small");
  AddCompound(q, 0, {{{CmpOp::kGe, 2}, {CmpOp::kNe, 5}}, {{CmpOp::kEq, 9}}});
  AddPredicate(q, 1, CmpOp::kGt, 30);
  const auto sql_or = QueryToSql(q, cat);
  ASSERT_TRUE(sql_or.ok());
  const auto reparsed_or = ParseQuery(sql_or.value(), cat);
  ASSERT_TRUE(reparsed_or.ok()) << reparsed_or.status();
  const auto sql2_or = QueryToSql(reparsed_or.value(), cat);
  ASSERT_TRUE(sql2_or.ok());
  EXPECT_EQ(sql_or.value(), sql2_or.value());
}

}  // namespace
}  // namespace qfcard::query
