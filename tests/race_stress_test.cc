#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/adaptive_estimator.h"
#include "adapt/feedback_bus.h"
#include "common/thread_pool.h"
#include "estimators/registry.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "query/query.h"
#include "serve/fss.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/serving_estimator.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/table.h"
#include "test_util.h"

// Race-stress suite: many OS threads hammering the shared pieces of the
// batch pipeline — one estimator/featurizer shared across callers, the
// estimator registry, the global thread pool — so the QFCARD_SANITIZE=thread
// CI job can prove the concurrency claims of docs/batch_api.md dynamically
// (TSan sees real interleavings, not annotations). Thread counts and batch
// sizes are kept small enough that the instrumented build stays fast.

namespace qfcard {
namespace {

constexpr int kOsThreads = 8;
constexpr int kBatch = 48;

storage::Table StressTable() {
  storage::Table t("stress");
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(i % 97);
    b.push_back((i * 7) % 101);
    c.push_back(0.5 * (i % 13));
  }
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("a", a)));
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("b", b)));
  QFCARD_CHECK_OK(t.AddColumn(testutil::FloatColumn("c", c)));
  return t;
}

storage::Catalog StressCatalog() {
  storage::Catalog cat;
  QFCARD_CHECK_OK(cat.AddTable(StressTable()));
  return cat;
}

// Deterministic workload: query i is a function of i only. With
// `mixed`, every even query adds a disjunctive compound predicate (only the
// kComplex QFT accepts those); without, all predicates are simple ranges.
std::vector<query::Query> StressQueries(int n, bool mixed = true) {
  std::vector<query::Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    query::Query q = testutil::SingleTableQuery("stress");
    testutil::AddPredicate(q, i % 3, query::CmpOp::kLe,
                           static_cast<double>(i % 50));
    if (mixed && i % 2 == 0) {
      testutil::AddCompound(
          q, (i + 1) % 3,
          {{{query::CmpOp::kLe, static_cast<double>(i % 20)}},
           {{query::CmpOp::kGe, static_cast<double>(60 + i % 30)}}});
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// Runs `body` on kOsThreads OS threads at once and propagates test failures.
void RunConcurrently(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kOsThreads);
  for (int t = 0; t < kOsThreads; ++t) {
    threads.emplace_back([&body, t] { body(t); });
  }
  for (std::thread& t : threads) t.join();
}

class RaceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Force a real pool regardless of QFCARD_THREADS so pool-internal state
    // is exercised even in the serial CI matrix leg.
    common::SetGlobalThreads(4);
  }
  void TearDown() override {
    common::SetGlobalThreads(common::ThreadPoolSizeFromEnv());
  }
};

TEST_F(RaceStressTest, ConcurrentEstimateBatchOnSharedEstimator) {
  const storage::Catalog catalog = StressCatalog();
  const std::vector<query::Query> queries = StressQueries(kBatch);
  for (const char* const name : {"postgres", "true"}) {
    auto built = est::MakeEstimator(name, catalog);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const std::unique_ptr<est::CardinalityEstimator> estimator =
        std::move(built).value();
    auto reference = estimator->EstimateBatch(queries);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    std::vector<std::vector<double>> per_thread(kOsThreads);
    RunConcurrently([&](int t) {
      auto result = estimator->EstimateBatch(queries);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      per_thread[static_cast<size_t>(t)] = std::move(result).value();
    });
    for (const std::vector<double>& result : per_thread) {
      EXPECT_EQ(result, reference.value()) << name;
    }
  }
}

TEST_F(RaceStressTest, ConcurrentEstimateBatchOnSharedSamplingEstimator) {
  const storage::Catalog catalog = StressCatalog();
  const std::vector<query::Query> queries = StressQueries(kBatch);
  auto built = est::MakeEstimator("sampling", catalog);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::unique_ptr<est::CardinalityEstimator> estimator =
      std::move(built).value();
  // Sampling draws fresh tickets per call, so concurrent callers see
  // different (but each valid) estimates; the point here is the shared
  // atomic ticket counter under TSan, not value equality.
  RunConcurrently([&](int) {
    auto result = estimator->EstimateBatch(queries);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const double est : result.value()) EXPECT_GE(est, 1.0);
  });
}

TEST_F(RaceStressTest, ConcurrentFeaturizeBatchOnSharedFeaturizer) {
  const storage::Table table = StressTable();
  for (const featurize::QftKind kind :
       {featurize::QftKind::kRange, featurize::QftKind::kComplex}) {
    // kRange only accepts conjunctions of simple ranges; kComplex takes the
    // full mixed workload.
    const std::vector<query::Query> queries = StressQueries(
        kBatch, /*mixed=*/kind == featurize::QftKind::kComplex);
    const std::unique_ptr<featurize::Featurizer> featurizer =
        featurize::MakeFeaturizer(
            kind, featurize::FeatureSchema::FromTable(table), {});
    const size_t row = static_cast<size_t>(featurizer->dim());
    std::vector<float> reference(queries.size() * row, 0.0f);
    ASSERT_TRUE(featurizer->FeaturizeBatch(queries, reference.data()).ok());
    RunConcurrently([&](int) {
      std::vector<float> mine(queries.size() * row, 0.0f);
      auto status = featurizer->FeaturizeBatch(queries, mine.data());
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_EQ(mine, reference);
    });
  }
}

TEST_F(RaceStressTest, ConcurrentMakeEstimatorRegistryHits) {
  const storage::Catalog catalog = StressCatalog();
  const std::vector<query::Query> queries = StressQueries(8);
  RunConcurrently([&](int t) {
    const char* const names[] = {"postgres", "sampling", "true"};
    for (int round = 0; round < 3; ++round) {
      auto built = est::MakeEstimator(names[(t + round) % 3], catalog);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      auto result = built.value()->EstimateBatch(queries);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  });
}

TEST_F(RaceStressTest, ConcurrentParallelForOnOnePool) {
  RunConcurrently([&](int) {
    constexpr int64_t kN = 2000;
    std::vector<int64_t> slots(kN, 0);
    common::GlobalPool().ParallelFor(kN,
                                     [&](int64_t i) { slots[i] = 3 * i; });
    for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(slots[i], 3 * i);
  });
}

TEST_F(RaceStressTest, NestedParallelForOnOnePool) {
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 400;
  std::vector<std::vector<int64_t>> slots(
      kOuter, std::vector<int64_t>(kInner, 0));
  common::GlobalPool().ParallelFor(kOuter, [&](int64_t o) {
    common::GlobalPool().ParallelFor(
        kInner, [&, o](int64_t i) { slots[o][i] = o * kInner + i; });
  });
  for (int64_t o = 0; o < kOuter; ++o) {
    for (int64_t i = 0; i < kInner; ++i) {
      ASSERT_EQ(slots[o][i], o * kInner + i);
    }
  }
}

TEST_F(RaceStressTest, ConcurrentLazyColumnStats) {
  const storage::Table table = StressTable();
  std::vector<storage::ColumnStats> seen(kOsThreads);
  RunConcurrently([&](int t) {
    // First caller computes, the rest race the cache fill.
    const storage::ColumnStats& stats = table.column(t % 3).GetStats();
    seen[static_cast<size_t>(t)] = stats;
  });
  for (int t = 0; t < kOsThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)].rows, 2000);
    EXPECT_GT(seen[static_cast<size_t>(t)].distinct, 0);
  }
}

TEST_F(RaceStressTest, HotSwapUnderConcurrentEstimateBatch) {
  const storage::Catalog catalog = StressCatalog();
  const std::vector<query::Query> queries = StressQueries(kBatch);

  // Two deterministic models with distinct outputs, so every batch result
  // must equal one of the two reference vectors exactly — any mixture means
  // a request saw a torn publication.
  auto built_a = est::MakeEstimator("postgres", catalog);
  auto built_b = est::MakeEstimator("true", catalog);
  ASSERT_TRUE(built_a.ok() && built_b.ok());
  std::shared_ptr<const est::CardinalityEstimator> model_a =
      std::move(built_a).value();
  std::shared_ptr<const est::CardinalityEstimator> model_b =
      std::move(built_b).value();
  const std::vector<double> ref_a = model_a->EstimateBatch(queries).value();
  const std::vector<double> ref_b = model_b->EstimateBatch(queries).value();
  ASSERT_NE(ref_a, ref_b);

  serve::ServingEstimator serving(model_a, /*version=*/1);
  constexpr int kSwaps = 200;
  std::atomic<bool> done{false};
  // Thread 0 is the control plane: it hammers Swap between the two models
  // while every other thread streams batches through the data plane.
  RunConcurrently([&](int t) {
    if (t == 0) {
      for (int i = 0; i < kSwaps; ++i) {
        const bool to_b = i % 2 == 0;
        serving.Swap(to_b ? model_b : model_a,
                     /*version=*/static_cast<uint64_t>(2 + i));
      }
      done.store(true, std::memory_order_release);
      return;
    }
    int batches = 0;
    while (!done.load(std::memory_order_acquire) || batches < 3) {
      auto result = serving.EstimateBatch(queries);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const bool is_a = result.value() == ref_a;
      const bool is_b = result.value() == ref_b;
      ASSERT_TRUE(is_a || is_b)
          << "batch " << batches << " on thread " << t
          << " mixed two models mid-flight";
      ++batches;
    }
  });

  // After the writer finished: the last swap (i = kSwaps-1, odd) installed
  // model_a, and every publication was counted.
  EXPECT_EQ(serving.EstimateBatch(queries).value(), ref_a);
  EXPECT_EQ(serving.ActiveVersion(), static_cast<uint64_t>(kSwaps + 1));
  EXPECT_EQ(serving.SwapCount(), static_cast<uint64_t>(kSwaps + 1));
}

TEST_F(RaceStressTest, ServerHotSwapUnderConcurrentClientTraffic) {
  const storage::Catalog catalog = StressCatalog();
  // One fixed shape, so every client hits the same route and every
  // micro-batch coalesces requests from several threads. Conjunctive only:
  // both reference models answer them deterministically.
  const std::vector<query::Query> queries = [&] {
    std::vector<query::Query> qs;
    for (int i = 0; i < kBatch; ++i) {
      query::Query q = testutil::SingleTableQuery("stress");
      testutil::AddCompound(
          q, 0,
          {{{query::CmpOp::kGe, static_cast<double>(i % 40)},
            {query::CmpOp::kLe, static_cast<double>(40 + i % 50)}}});
      qs.push_back(std::move(q));
    }
    return qs;
  }();

  auto built_a = est::MakeEstimator("postgres", catalog);
  auto built_b = est::MakeEstimator("true", catalog);
  ASSERT_TRUE(built_a.ok() && built_b.ok());
  std::shared_ptr<const est::CardinalityEstimator> model_a =
      std::move(built_a).value();
  std::shared_ptr<const est::CardinalityEstimator> model_b =
      std::move(built_b).value();
  const std::vector<double> ref_a = model_a->EstimateBatch(queries).value();
  const std::vector<double> ref_b = model_b->EstimateBatch(queries).value();

  serve::ModelRouterOptions ropts;
  ropts.factory = [&model_a](uint64_t, const query::Query&)
      -> common::StatusOr<std::shared_ptr<serve::ServingEstimator>> {
    return std::make_shared<serve::ServingEstimator>(model_a, 1);
  };
  serve::ModelRouter router(std::move(ropts));
  // Open the route before the traffic starts so the swapper has a target.
  ASSERT_TRUE(router.Resolve(queries[0]).ok());
  const std::shared_ptr<serve::ServingEstimator> route =
      router.FindRoute(serve::FeatureSpaceHash(queries[0]));
  ASSERT_NE(route, nullptr);

  serve::EstimationServer server(&router);
  server.Start();

  std::vector<est::EstimateRequest> requests(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) requests[i].query = queries[i];

  constexpr int kSwaps = 120;
  std::atomic<bool> done{false};
  // Thread 0 hammers Swap on the live route; every other thread streams
  // request batches through the server. A response may be computed by
  // either model (batches split across swaps), but each individual answer
  // must equal one model's output exactly — anything else means a torn
  // publication or a cross-request mixup in the batching queue.
  RunConcurrently([&](int t) {
    if (t == 0) {
      for (int i = 0; i < kSwaps; ++i) {
        route->Swap(i % 2 == 0 ? model_b : model_a,
                    static_cast<uint64_t>(2 + i));
      }
      done.store(true, std::memory_order_release);
      return;
    }
    int rounds = 0;
    while (!done.load(std::memory_order_acquire) || rounds < 2) {
      const auto responses = server.EstimateMany(requests);
      for (size_t i = 0; i < responses.size(); ++i) {
        ASSERT_TRUE(responses[i].ok())
            << responses[i].status().ToString();
        const double estimate = responses[i].value().estimate;
        ASSERT_TRUE(estimate == ref_a[i] || estimate == ref_b[i])
            << "thread " << t << " round " << rounds << " query " << i
            << " answered by neither model";
      }
      ++rounds;
    }
  });
  server.Stop();

  // The last swap (i = kSwaps-1, odd) installed model_a; a drained server
  // answers with it.
  EXPECT_EQ(route->EstimateBatch(queries).value(), ref_a);
  EXPECT_GE(server.BatchesFlushed(), 1u);
}

TEST_F(RaceStressTest, FeedbackBusPublishVersusPredictOnAdaptiveFront) {
  const storage::Catalog catalog = StressCatalog();
  const std::vector<query::Query> queries = StressQueries(kBatch);

  auto built_base = est::MakeEstimator("postgres", catalog);
  auto built_ml = est::MakeEstimator("true", catalog);
  ASSERT_TRUE(built_base.ok() && built_ml.ok());
  const std::shared_ptr<const est::CardinalityEstimator> base =
      std::move(built_base).value();
  const std::shared_ptr<const est::CardinalityEstimator> model =
      std::move(built_ml).value();
  // The ML tier answers with executor truth, so truths double as feedback.
  const std::vector<double> truths = model->EstimateBatch(queries).value();

  const auto serving = std::make_shared<serve::ServingEstimator>(model, 1);
  const std::shared_ptr<const featurize::Featurizer> featurizer =
      featurize::MakeFeaturizer(
          featurize::QftKind::kComplex,
          featurize::FeatureSchema::FromTable(StressTable()), {});

  adapt::AdaptiveOptions aopts;
  aopts.mode = adapt::AdaptiveMode::kAuto;
  adapt::AdaptiveEstimator adaptive(base, serving, featurizer, aopts);
  adaptive.TrackServingVersion(serving.get());
  adapt::FeedbackBus bus;
  adaptive.ConnectTo(&bus);

  // Thread 0 hot-swaps the serving model (same model, fresh versions) so the
  // arbiter's reset-on-swap path races the learners; even threads publish
  // feedback into the bus; odd threads predict on the shared front. With
  // concurrent publishers the feedback order — and therefore the estimates —
  // is unordered; the claims under TSan are no data races, every estimate
  // ok and tier-stamped, and no record lost between bus and learners.
  constexpr int kSwaps = 60;
  RunConcurrently([&](int t) {
    if (t == 0) {
      for (int i = 0; i < kSwaps; ++i) {
        serving->Swap(model, static_cast<uint64_t>(2 + i));
      }
      return;
    }
    if (t % 2 == 0) {
      for (size_t i = 0; i < queries.size(); ++i) {
        adapt::FeedbackRecord record;
        record.query = queries[i];
        record.true_card = truths[i];
        bus.Publish(std::move(record));
      }
      return;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      est::EstimateRequest request;
      request.query = queries[i];
      auto response = adaptive.Estimate(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_GE(response.value().estimate, 1.0);
      EXPECT_NE(response.value().tier, est::ServedTier::kNone);
      EXPECT_FALSE(response.value().tier_reason.empty());
    }
  });
  adaptive.Disconnect();

  // Synchronous fan-out: every published record reached the learners, from
  // exactly the publisher threads (1 swapper, 3 publishers, 4 predictors).
  const uint64_t expected =
      static_cast<uint64_t>(kOsThreads / 2 - 1) * queries.size();
  EXPECT_EQ(bus.published(), expected);
  EXPECT_EQ(adaptive.ingested(), expected);

  // A post-disconnect publish is invisible to the front.
  adapt::FeedbackRecord late;
  late.query = queries[0];
  late.true_card = truths[0];
  bus.Publish(std::move(late));
  EXPECT_EQ(adaptive.ingested(), expected);
}

TEST_F(RaceStressTest, ParallelForExceptionSmallestIndexWinsUnderContention) {
  for (int round = 0; round < 4; ++round) {
    try {
      common::GlobalPool().ParallelFor(500, [&](int64_t i) {
        if (i % 7 == 3) throw static_cast<int>(i);
      });
      FAIL() << "expected a throw";
    } catch (const int i) {
      EXPECT_EQ(i, 3);  // smallest failing index, at any pool size
    }
  }
}

}  // namespace
}  // namespace qfcard
