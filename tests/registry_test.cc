#include "estimators/registry.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace qfcard::est {
namespace {

using testutil::SmallCatalog;

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  const storage::Catalog catalog = SmallCatalog();
  const std::vector<std::string> names = RegisteredEstimators();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    const auto estimator = MakeEstimator(name, catalog);
    ASSERT_TRUE(estimator.ok())
        << "registered name \"" << name
        << "\" failed to construct: " << estimator.status().ToString();
    EXPECT_NE(estimator.value(), nullptr) << name;
    EXPECT_FALSE(estimator.value()->name().empty()) << name;
  }
}

TEST(RegistryTest, RegisteredNamesAreUniqueAndCoverBaselines) {
  std::vector<std::string> names = RegisteredEstimators();
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end())
      << "duplicate registered name";
  for (const char* expected : {"postgres", "sampling", "true", "mscn",
                               "gb+conjunctive", "nn+complex"}) {
    EXPECT_TRUE(std::binary_search(names.begin(), names.end(),
                                   std::string(expected)))
        << expected << " missing from RegisteredEstimators()";
  }
}

TEST(RegistryTest, UnknownNameReturnsErrorListingRegisteredNames) {
  const storage::Catalog catalog = SmallCatalog();
  const auto result = MakeEstimator("no-such-estimator", catalog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  // The error enumerates valid choices so CLI users can self-correct.
  EXPECT_NE(result.status().message().find("registered names"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("postgres"), std::string::npos);
}

TEST(RegistryTest, UnknownModelAndQftReturnErrors) {
  const storage::Catalog catalog = SmallCatalog();

  const auto bad_model = MakeEstimator("forest+simple", catalog);
  ASSERT_FALSE(bad_model.ok());
  EXPECT_NE(bad_model.status().message().find("unknown model"),
            std::string::npos)
      << bad_model.status().ToString();
  EXPECT_NE(bad_model.status().message().find("registered names"),
            std::string::npos);

  const auto bad_qft = MakeEstimator("gb+fourier", catalog);
  ASSERT_FALSE(bad_qft.ok());
  EXPECT_NE(bad_qft.status().message().find("unknown QFT"), std::string::npos)
      << bad_qft.status().ToString();
}

TEST(RegistryTest, TypoGetsDidYouMeanSuggestion) {
  const storage::Catalog catalog = SmallCatalog();

  // One edit away from a registered name: the error names the fix.
  const auto typo = MakeEstimator("postgers", catalog);
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.status().message().find("did you mean \"postgres\"?"),
            std::string::npos)
      << typo.status().ToString();

  const auto qft_typo = MakeEstimator("gb+conjuctive", catalog);
  ASSERT_FALSE(qft_typo.ok());
  EXPECT_NE(qft_typo.status().message().find("did you mean \"gb+conjunctive\"?"),
            std::string::npos)
      << qft_typo.status().ToString();

  // Nothing close: no suggestion, just the name list.
  const auto nonsense = MakeEstimator("zzzzzzzzzzzzzz", catalog);
  ASSERT_FALSE(nonsense.ok());
  EXPECT_EQ(nonsense.status().message().find("did you mean"),
            std::string::npos)
      << nonsense.status().ToString();
}

TEST(RegistryTest, QftAliasesAndCaseInsensitivity) {
  const storage::Catalog catalog = SmallCatalog();
  for (const char* name : {"gb+conj", "gb+conjunctive", "linear+comp",
                           "linear+complex", "POSTGRES", "Sampling",
                           "NN+Simple", "MSCN+Range"}) {
    const auto estimator = MakeEstimator(name, catalog);
    EXPECT_TRUE(estimator.ok())
        << name << ": " << estimator.status().ToString();
  }
}

TEST(RegistryTest, EmptyCatalogRejectedForFeaturizedEstimators) {
  const storage::Catalog empty;
  const auto result = MakeEstimator("gb+simple", empty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qfcard::est
