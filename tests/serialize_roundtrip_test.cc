#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "estimators/registry.h"
#include "featurize/partitioner.h"
#include "gtest/gtest.h"
#include "serve/bundle.h"
#include "storage/catalog.h"
#include "workload/forest.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::serve {
namespace {

/// One labeled forest workload shared by every round-trip case (building it
/// labels ~150 queries, so do it once).
struct Fixture {
  storage::Catalog catalog;
  std::vector<query::Query> train_queries;
  std::vector<double> train_cards;
  std::vector<query::Query> test_queries;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    workload::ForestOptions forest;
    forest.num_rows = 3000;
    forest.num_attributes = 6;
    forest.seed = 42;
    storage::Table table = workload::MakeForestTable(forest);
    common::Rng rng(7);
    const std::vector<query::Query> queries =
        workload::GeneratePredicateWorkload(
            table, 150, workload::ConjunctiveWorkloadOptions(/*max_attrs=*/3),
            rng);
    const auto labeled = workload::LabelOnTable(table, queries,
                                                /*drop_empty=*/true);
    QFCARD_CHECK_OK(labeled.status());
    size_t i = 0;
    for (const auto& lq : labeled.value()) {
      if (i++ % 5 == 0) {
        f->test_queries.push_back(lq.query);
      } else {
        f->train_queries.push_back(lq.query);
        f->train_cards.push_back(lq.card);
      }
    }
    QFCARD_CHECK_OK(f->catalog.AddTable(std::move(table)));
    return f;
  }();
  return *fixture;
}

/// Hyperparameters small enough that training every model type stays in
/// test-time budget (round-trip fidelity does not depend on model quality).
est::EstimatorOptions SmallOptions() {
  est::EstimatorOptions opts;
  opts.gbm.num_trees = 12;
  opts.gbm.max_depth = 3;
  opts.nn.hidden = {8};
  opts.nn.max_epochs = 5;
  opts.nn.max_steps = 150;
  opts.mscn.hidden = 8;
  opts.mscn.max_epochs = 5;
  opts.mscn.max_steps = 150;
  return opts;
}

/// Train -> bundle -> encode -> decode -> load -> re-bundle -> re-encode.
/// Asserts predictions are bit-identical across the save/load boundary and
/// that re-saving the loaded estimator reproduces the original bytes.
void ExpectRoundTrip(const std::string& name,
                     const est::EstimatorOptions& opts) {
  SCOPED_TRACE(name);
  const Fixture& fx = GetFixture();

  auto estimator_or = est::MakeEstimator(name, fx.catalog, opts);
  ASSERT_TRUE(estimator_or.ok()) << estimator_or.status().ToString();
  std::unique_ptr<est::CardinalityEstimator> estimator =
      std::move(estimator_or).value();
  ASSERT_TRUE(estimator
                  ->Train(fx.train_queries, fx.train_cards,
                          /*valid_fraction=*/0.15, /*seed=*/20260806)
                  .ok());
  auto before_or = estimator->EstimateBatch(fx.test_queries);
  ASSERT_TRUE(before_or.ok()) << before_or.status().ToString();

  auto bundle_or = BundleFromEstimator(*estimator, name);
  ASSERT_TRUE(bundle_or.ok()) << bundle_or.status().ToString();
  std::vector<uint8_t> bytes;
  EncodeBundle(*bundle_or, &bytes);

  auto decoded_or = DecodeBundle(bytes);
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  EXPECT_EQ(decoded_or->estimator, name);
  EXPECT_EQ(decoded_or->featurizer, bundle_or->featurizer);
  EXPECT_EQ(decoded_or->model, bundle_or->model);

  auto loaded_or = EstimatorFromBundle(*decoded_or, fx.catalog);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  auto after_or = (*loaded_or)->EstimateBatch(fx.test_queries);
  ASSERT_TRUE(after_or.ok()) << after_or.status().ToString();
  ASSERT_EQ(after_or->size(), before_or->size());
  for (size_t i = 0; i < before_or->size(); ++i) {
    EXPECT_EQ((*before_or)[i], (*after_or)[i])
        << "prediction " << i << " changed across save/load";
  }

  auto rebundle_or = BundleFromEstimator(**loaded_or, name);
  ASSERT_TRUE(rebundle_or.ok()) << rebundle_or.status().ToString();
  std::vector<uint8_t> rebytes;
  EncodeBundle(*rebundle_or, &rebytes);
  EXPECT_EQ(bytes, rebytes) << "re-saving a loaded bundle changed its bytes";
}

TEST(SerializeRoundTrip, LinearSimple) {
  ExpectRoundTrip("linear+simple", SmallOptions());
}

TEST(SerializeRoundTrip, GbRange) {
  ExpectRoundTrip("gb+range", SmallOptions());
}

TEST(SerializeRoundTrip, GbConjunctive) {
  ExpectRoundTrip("gb+conjunctive", SmallOptions());
}

TEST(SerializeRoundTrip, NnComplex) {
  ExpectRoundTrip("nn+complex", SmallOptions());
}

TEST(SerializeRoundTrip, GbConjunctiveWithEquiDepthPartitioner) {
  const Fixture& fx = GetFixture();
  est::EstimatorOptions opts = SmallOptions();
  // Static so the partitioner outlives the estimator inside ExpectRoundTrip.
  static const auto* partitioner = new featurize::EquiDepthPartitioner(
      featurize::EquiDepthPartitioner::FromTable(fx.catalog.table(0), 16));
  opts.conj.partitioner = partitioner;
  opts.conj.max_partitions = 16;
  ExpectRoundTrip("gb+conjunctive", opts);
}

TEST(SerializeRoundTrip, MscnOriginal) {
  ExpectRoundTrip("mscn", SmallOptions());
}

TEST(SerializeRoundTrip, MscnRange) {
  ExpectRoundTrip("mscn+range", SmallOptions());
}

TEST(SerializeRoundTrip, MscnConjunctive) {
  ExpectRoundTrip("mscn+conj", SmallOptions());
}

TEST(SerializeRoundTrip, StatisticsEstimatorsAreUnimplemented) {
  const Fixture& fx = GetFixture();
  auto postgres = est::MakeEstimator("postgres", fx.catalog);
  ASSERT_TRUE(postgres.ok());
  auto bundle = BundleFromEstimator(**postgres, "postgres");
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), common::StatusCode::kUnimplemented);
}

/// A small trained bundle for the corruption cases (linear keeps it cheap).
std::vector<uint8_t> SmallEncodedBundle() {
  const Fixture& fx = GetFixture();
  auto estimator = est::MakeEstimator("linear+simple", fx.catalog).value();
  QFCARD_CHECK_OK(
      estimator->Train(fx.train_queries, fx.train_cards, 0.15, 20260806));
  std::vector<uint8_t> bytes;
  EncodeBundle(BundleFromEstimator(*estimator, "linear+simple").value(),
               &bytes);
  return bytes;
}

TEST(BundleCorruption, EmptyAndTinyInputsAreRejected) {
  EXPECT_FALSE(DecodeBundle({}).ok());
  EXPECT_FALSE(DecodeBundle({0x51}).ok());
  EXPECT_FALSE(DecodeBundle({0x51, 0x42, 0x44, 0x4c}).ok());
}

TEST(BundleCorruption, EveryTruncationIsRejected) {
  const std::vector<uint8_t> bytes = SmallEncodedBundle();
  ASSERT_TRUE(DecodeBundle(bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> prefix(bytes.begin(),
                                      bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(DecodeBundle(prefix).ok()) << "prefix length " << len;
  }
}

TEST(BundleCorruption, BitFlipsAreDetectedByChecksum) {
  const std::vector<uint8_t> bytes = SmallEncodedBundle();
  for (size_t i = 0; i < bytes.size(); i += 3) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x20;
    EXPECT_FALSE(DecodeBundle(corrupt).ok()) << "flip at byte " << i;
  }
}

TEST(BundleCorruption, TrailingGarbageIsRejected) {
  std::vector<uint8_t> bytes = SmallEncodedBundle();
  bytes.push_back(0);
  EXPECT_FALSE(DecodeBundle(bytes).ok());
}

TEST(BundleCorruption, GarbagePayloadsFailCleanly) {
  const Fixture& fx = GetFixture();
  const ModelBundle good = DecodeBundle(SmallEncodedBundle()).value();

  ModelBundle bad_model = good;
  bad_model.model.assign(64, 0xAB);
  EXPECT_FALSE(EstimatorFromBundle(bad_model, fx.catalog).ok());

  ModelBundle bad_featurizer = good;
  bad_featurizer.featurizer.assign(64, 0xCD);
  EXPECT_FALSE(EstimatorFromBundle(bad_featurizer, fx.catalog).ok());

  ModelBundle empty_model = good;
  empty_model.model.clear();
  EXPECT_FALSE(EstimatorFromBundle(empty_model, fx.catalog).ok());
}

TEST(BundleCorruption, MismatchedFeaturizerAndModelAreRejected) {
  const Fixture& fx = GetFixture();
  const est::EstimatorOptions opts = SmallOptions();

  auto simple = est::MakeEstimator("linear+simple", fx.catalog, opts).value();
  QFCARD_CHECK_OK(simple->Train(fx.train_queries, fx.train_cards, 0.15, 1));
  auto conj =
      est::MakeEstimator("linear+conjunctive", fx.catalog, opts).value();
  QFCARD_CHECK_OK(conj->Train(fx.train_queries, fx.train_cards, 0.15, 1));

  // Pair the conjunctive featurizer (wide vectors) with the simple-QFT
  // model (narrow input): the loader's input-dimension cross-check must
  // reject it instead of letting Predict read out of bounds.
  ModelBundle franken =
      BundleFromEstimator(*conj, "linear+conjunctive").value();
  franken.model = BundleFromEstimator(*simple, "linear+simple").value().model;
  const auto loaded = EstimatorFromBundle(franken, fx.catalog);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qfcard::serve
