#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "estimators/registry.h"
#include "estimators/true_card.h"
#include "gtest/gtest.h"
#include "obs/qerror_monitor.h"
#include "serve/bundle.h"
#include "serve/model_store.h"
#include "serve/retrainer.h"
#include "serve/serving_estimator.h"
#include "storage/catalog.h"
#include "workload/forest.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::serve {
namespace {

std::string MakeTempRoot(const std::string& name) {
  const std::string root = ::testing::TempDir() + "qfcard_serve_" + name;
  std::filesystem::remove_all(root);
  return root;
}

ModelBundle FakeBundle(uint8_t tag) {
  ModelBundle bundle;
  bundle.estimator = "gb+conjunctive";
  bundle.featurizer = {tag, 1, 2, 3};
  bundle.model = {tag, 9, 8, 7, 6};
  return bundle;
}

TEST(ModelStore, PublishLoadListRoundTrip) {
  ModelStore store(MakeTempRoot("roundtrip"));

  auto empty = store.ListVersions();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(store.LoadLatest().ok());

  auto v1 = store.Publish(FakeBundle(11));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1u);
  auto v2 = store.Publish(FakeBundle(22));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);

  auto versions = store.ListVersions();
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<uint64_t>{1, 2}));

  auto loaded = store.Load(1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->estimator, "gb+conjunctive");
  EXPECT_EQ(loaded->featurizer, FakeBundle(11).featurizer);
  EXPECT_EQ(loaded->model, FakeBundle(11).model);

  auto latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->first, 2u);
  EXPECT_EQ(latest->second.model, FakeBundle(22).model);

  EXPECT_EQ(store.Load(3).status().code(), common::StatusCode::kNotFound);
}

TEST(ModelStore, SecondStoreOnSameRootContinuesVersions) {
  const std::string root = MakeTempRoot("reopen");
  {
    ModelStore store(root);
    ASSERT_TRUE(store.Publish(FakeBundle(1)).ok());
    ASSERT_TRUE(store.Publish(FakeBundle(2)).ok());
  }
  ModelStore reopened(root);
  auto v = reopened.Publish(FakeBundle(3));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3u);
}

TEST(ModelStore, RejectsEmptyEstimatorName) {
  ModelStore store(MakeTempRoot("badname"));
  ModelBundle bundle = FakeBundle(1);
  bundle.estimator = "";
  EXPECT_FALSE(store.Publish(bundle).ok());
}

TEST(ModelStore, DetectsOnDiskCorruption) {
  const std::string root = MakeTempRoot("corrupt");
  ModelStore store(root);
  ASSERT_TRUE(store.Publish(FakeBundle(7)).ok());
  const std::string dir = root + "/v000001";

  // Flip one byte of the model payload: the manifest CRC must catch it.
  {
    std::fstream f(dir + "/model.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(0);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(store.Load(1).ok());

  // Restore via re-publish, then truncate a payload: size check must catch.
  ASSERT_TRUE(store.Publish(FakeBundle(7)).ok());
  std::filesystem::resize_file(root + "/v000002/featurizer.bin", 1);
  EXPECT_FALSE(store.Load(2).ok());

  // A garbage manifest is a clean error, not UB.
  ASSERT_TRUE(store.Publish(FakeBundle(7)).ok());
  {
    std::ofstream f(root + "/v000003/MANIFEST", std::ios::trunc);
    f << "not a manifest\n";
  }
  EXPECT_FALSE(store.Load(3).ok());

  // A version directory with no manifest at all is NotFound.
  std::filesystem::create_directories(root + "/v000009");
  EXPECT_EQ(store.Load(9).status().code(), common::StatusCode::kNotFound);
}

TEST(ModelStore, RetainLatestRemovesOldVersionsWithoutReuse) {
  ModelStore store(MakeTempRoot("retain"));
  for (uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(store.Publish(FakeBundle(i)).ok());
  }
  auto removed = store.RetainLatest(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2);
  auto versions = store.ListVersions();
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<uint64_t>{3}));
  // GC never frees version numbers for reuse.
  auto next = store.Publish(FakeBundle(4));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 4u);
}

/// Deterministic stand-in model for swap/retrain scenarios.
class ConstEstimator : public est::CardinalityEstimator {
 public:
  explicit ConstEstimator(double value) : value_(value) {}
  common::StatusOr<double> EstimateCard(const query::Query&) const override {
    return value_;
  }
  std::string name() const override { return "const"; }

 private:
  const double value_;
};

TEST(ServingEstimatorTest, ForwardsAndSwaps) {
  ServingEstimator serving(std::make_shared<ConstEstimator>(42.0),
                           /*version=*/7);
  EXPECT_EQ(serving.ActiveVersion(), 7u);
  EXPECT_EQ(serving.SwapCount(), 1u);
  EXPECT_EQ(serving.name(), "serving:const");

  query::Query q;
  auto one = serving.EstimateCard(q);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 42.0);
  auto batch = serving.EstimateBatch({q, q, q});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, (std::vector<double>{42.0, 42.0, 42.0}));

  // The active model is immutable behind the front.
  EXPECT_EQ(serving.Train({}, {}, 0.1, 1).code(),
            common::StatusCode::kFailedPrecondition);

  serving.Swap(std::make_shared<ConstEstimator>(5.0), /*version=*/8);
  EXPECT_EQ(serving.ActiveVersion(), 8u);
  EXPECT_EQ(serving.SwapCount(), 2u);
  auto swapped = serving.EstimateCard(q);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(*swapped, 5.0);
}

/// Forest workload shared by the retrainer scenarios.
struct RetrainFixture {
  storage::Catalog catalog;
  std::vector<workload::LabeledQuery> labeled;
};

const RetrainFixture& GetRetrainFixture() {
  static const RetrainFixture* fixture = [] {
    auto* f = new RetrainFixture();
    workload::ForestOptions forest;
    forest.num_rows = 3000;
    forest.num_attributes = 6;
    forest.seed = 99;
    storage::Table table = workload::MakeForestTable(forest);
    common::Rng rng(13);
    const std::vector<query::Query> queries =
        workload::GeneratePredicateWorkload(
            table, 220, workload::ConjunctiveWorkloadOptions(/*max_attrs=*/3),
            rng);
    auto labeled = workload::LabelOnTable(table, queries, /*drop_empty=*/true);
    QFCARD_CHECK_OK(labeled.status());
    f->labeled = std::move(labeled).value();
    QFCARD_CHECK_OK(f->catalog.AddTable(std::move(table)));
    return f;
  }();
  return *fixture;
}

RetrainerOptions SmallRetrainerOptions() {
  RetrainerOptions opts;
  opts.estimator_name = "gb+conjunctive";
  opts.estimator_opts.gbm.num_trees = 24;
  opts.estimator_opts.gbm.max_depth = 4;
  opts.min_feedback = 32;
  opts.seed = 20260806;
  return opts;
}

TEST(RetrainerTest, InsufficientFeedbackIsANoOp) {
  const RetrainFixture& fx = GetRetrainFixture();
  ServingEstimator serving(std::make_shared<ConstEstimator>(1.0), 0);
  Retrainer retrainer(&serving, &fx.catalog, SmallRetrainerOptions());
  for (int i = 0; i < 5; ++i) {
    retrainer.AddFeedback(fx.labeled[static_cast<size_t>(i)].query,
                          fx.labeled[static_cast<size_t>(i)].card);
  }
  EXPECT_EQ(retrainer.feedback_size(), 5u);
  auto result = retrainer.RetrainNow();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->attempted);
  EXPECT_FALSE(result->promoted);
  EXPECT_NE(result->detail.find("insufficient"), std::string::npos);
  EXPECT_EQ(serving.SwapCount(), 1u);
}

TEST(RetrainerTest, PromotesImprovingCandidateThroughStore) {
  const RetrainFixture& fx = GetRetrainFixture();
  ServingEstimator serving(std::make_shared<ConstEstimator>(1.0), 0);
  ModelStore store(MakeTempRoot("promote"));
  RetrainerOptions opts = SmallRetrainerOptions();
  opts.store = &store;
  Retrainer retrainer(&serving, &fx.catalog, opts);
  for (const auto& lq : fx.labeled) retrainer.AddFeedback(lq.query, lq.card);

  auto result = retrainer.RetrainNow();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->attempted);
  ASSERT_TRUE(result->promoted)
      << "candidate p95 " << result->candidate_p95 << " vs stale "
      << result->stale_p95;
  EXPECT_LT(result->candidate_p95, result->stale_p95);
  EXPECT_EQ(result->version, 1u);
  EXPECT_EQ(serving.ActiveVersion(), 1u);
  EXPECT_EQ(serving.SwapCount(), 2u);
  EXPECT_EQ(serving.name(), "serving:" + serving.Active()->name());

  // The promoted model is on disk and reloadable into a working estimator.
  auto latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->first, 1u);
  auto reloaded = EstimatorFromBundle(latest->second, fx.catalog);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  auto estimate = (*reloaded)->EstimateCard(fx.labeled.front().query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, 1.0);
}

TEST(RetrainerTest, RejectsNonImprovingCandidate) {
  const RetrainFixture& fx = GetRetrainFixture();
  // The oracle's holdout p95 is exactly 1; no candidate can strictly beat
  // it, so the retrainer must refuse to swap.
  ServingEstimator serving(
      std::make_shared<est::TrueCardEstimator>(&fx.catalog), /*version=*/5);
  ModelStore store(MakeTempRoot("reject"));
  RetrainerOptions opts = SmallRetrainerOptions();
  opts.estimator_name = "linear+simple";
  opts.store = &store;
  Retrainer retrainer(&serving, &fx.catalog, opts);
  for (const auto& lq : fx.labeled) retrainer.AddFeedback(lq.query, lq.card);

  auto result = retrainer.RetrainNow();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->attempted);
  EXPECT_FALSE(result->promoted);
  EXPECT_EQ(result->stale_p95, 1.0);
  EXPECT_NE(result->detail.find("rejected"), std::string::npos);
  // No swap, no publish: the stale-but-better model keeps serving.
  EXPECT_EQ(serving.ActiveVersion(), 5u);
  EXPECT_EQ(serving.SwapCount(), 1u);
  auto versions = store.ListVersions();
  ASSERT_TRUE(versions.ok());
  EXPECT_TRUE(versions->empty());
}

TEST(RetrainerTest, FeedbackRingOverwritesOldest) {
  const RetrainFixture& fx = GetRetrainFixture();
  ServingEstimator serving(std::make_shared<ConstEstimator>(1.0), 0);
  RetrainerOptions opts = SmallRetrainerOptions();
  opts.max_feedback = 16;
  Retrainer retrainer(&serving, &fx.catalog, opts);
  for (const auto& lq : fx.labeled) retrainer.AddFeedback(lq.query, lq.card);
  EXPECT_EQ(retrainer.feedback_size(), 16u);
}

TEST(RetrainerTest, DriftFlipTriggersBackgroundRetrain) {
  const RetrainFixture& fx = GetRetrainFixture();
  ServingEstimator serving(std::make_shared<ConstEstimator>(1.0), 0);
  obs::DriftMonitorOptions monitor_opts;
  monitor_opts.window = 16;
  monitor_opts.p95_threshold = 2.0;
  monitor_opts.min_samples = 4;
  obs::QErrorDriftMonitor monitor(monitor_opts);
  RetrainerOptions opts = SmallRetrainerOptions();
  opts.monitor = &monitor;
  Retrainer retrainer(&serving, &fx.catalog, opts);
  for (const auto& lq : fx.labeled) retrainer.AddFeedback(lq.query, lq.card);

  retrainer.Start();
  for (int i = 0; i < 8; ++i) monitor.Observe(100.0);
  EXPECT_TRUE(monitor.degraded());

  // The flip listener only schedules work; wait for the worker to finish a
  // run (bounded: ~30s before the expectations below fail loudly).
  for (int tries = 0; tries < 3000 && retrainer.runs() == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  retrainer.Stop();

  EXPECT_GE(retrainer.runs(), 1u);
  const RetrainResult result = retrainer.last_result();
  EXPECT_TRUE(result.attempted);
  EXPECT_TRUE(result.promoted)
      << "candidate p95 " << result.candidate_p95 << " vs stale "
      << result.stale_p95;
  EXPECT_GE(serving.SwapCount(), 2u);

  // Stop() is idempotent and Start()/Stop() can cycle.
  retrainer.Stop();
  retrainer.Start();
  retrainer.Stop();
}

}  // namespace
}  // namespace qfcard::serve
