#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "estimators/registry.h"
#include "estimators/request.h"
#include "query/query.h"
#include "serve/fss.h"
#include "serve/router.h"
#include "serve/serving_estimator.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "workload/labeler.h"

// Estimation-server tests (docs/serving.md): routing determinism, the three
// admission policies, the request/response API contract, and the tentpole
// guarantee — answers through the micro-batching server are byte-identical
// to direct calls on the route's model, at 1, 2, and 8 client threads.

namespace qfcard::serve {
namespace {

using query::CmpOp;

storage::Table ServerTable() {
  storage::Table t("srv");
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 0; i < 500; ++i) {
    a.push_back(i % 89);
    b.push_back((i * 13) % 71);
    c.push_back(i % 7);
  }
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("a", a)));
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("b", b)));
  QFCARD_CHECK_OK(t.AddColumn(testutil::IntColumn("c", c)));
  return t;
}

storage::Catalog ServerCatalog() {
  storage::Catalog cat;
  QFCARD_CHECK_OK(cat.AddTable(ServerTable()));
  return cat;
}

/// Shape A: a in [lo, lo+span] — all literals map to one feature space.
query::Query ShapeA(double lo, double span = 10.0) {
  query::Query q = testutil::SingleTableQuery("srv");
  testutil::AddCompound(
      q, 0, {{{CmpOp::kGe, lo}, {CmpOp::kLe, lo + span}}});
  return q;
}

/// Shape B: b = v OR b = w — a different feature space from ShapeA.
query::Query ShapeB(double v, double w) {
  query::Query q = testutil::SingleTableQuery("srv");
  testutil::AddCompound(q, 1, {{{CmpOp::kEq, v}}, {{CmpOp::kEq, w}}});
  return q;
}

std::shared_ptr<ServingEstimator> WrapServing(
    std::shared_ptr<const est::CardinalityEstimator> model, uint64_t version) {
  return std::make_shared<ServingEstimator>(std::move(model), version);
}

/// Intelligent-mode options whose factory serves `model` on every route.
ModelRouterOptions SharedModelOptions(
    std::shared_ptr<const est::CardinalityEstimator> model,
    uint64_t version = 1) {
  ModelRouterOptions opts;
  opts.factory = [model, version](uint64_t, const query::Query&)
      -> common::StatusOr<std::shared_ptr<ServingEstimator>> {
    return WrapServing(model, version);
  };
  return opts;
}

std::shared_ptr<const est::CardinalityEstimator> Postgres(
    const storage::Catalog& catalog) {
  return std::shared_ptr<const est::CardinalityEstimator>(
      est::MakeEstimator("postgres", catalog).value());
}

// --- Routing ---------------------------------------------------------------

TEST(ModelRouter, ResolutionIsDeterministicAcrossRoutersAndLiterals) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouter r1(SharedModelOptions(Postgres(catalog)));
  ModelRouter r2(SharedModelOptions(Postgres(catalog)));

  auto first = r1.Resolve(ShapeA(5.0));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->created);
  EXPECT_EQ(first->route_id, first->fss);
  EXPECT_EQ(first->fss, FeatureSpaceHash(ShapeA(5.0)));

  // Same shape, different literals, different router instance: same id.
  auto second = r1.Resolve(ShapeA(40.0, 3.0));
  auto other = r2.Resolve(ShapeA(77.0));
  ASSERT_TRUE(second.ok() && other.ok());
  EXPECT_FALSE(second->created);
  EXPECT_EQ(second->route_id, first->route_id);
  EXPECT_EQ(other->route_id, first->route_id);
  EXPECT_EQ(r1.NumRoutes(), 1u);

  // A different shape opens a different route.
  auto shape_b = r1.Resolve(ShapeB(1.0, 2.0));
  ASSERT_TRUE(shape_b.ok());
  EXPECT_TRUE(shape_b->created);
  EXPECT_NE(shape_b->route_id, first->route_id);
  EXPECT_EQ(r1.NumRoutes(), 2u);
  EXPECT_EQ(r1.RouteLabel(first->route_id), FeatureSpaceSignature(ShapeA(5.0)));
}

TEST(ModelRouter, PerRequestCreationOptOut) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouter router(SharedModelOptions(Postgres(catalog)));
  est::EstimateOptions no_create;
  no_create.allow_route_creation = false;

  auto rejected = router.Resolve(ShapeA(5.0), no_create);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            common::StatusCode::kFailedPrecondition);

  // Once the route exists (a permissive request opened it), the opt-out
  // request is served normally.
  ASSERT_TRUE(router.Resolve(ShapeA(5.0)).ok());
  EXPECT_TRUE(router.Resolve(ShapeA(9.0), no_create).ok());
}

TEST(ModelRouter, RouteLimitExhausts) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouterOptions opts = SharedModelOptions(Postgres(catalog));
  opts.max_routes = 1;
  ModelRouter router(std::move(opts));
  ASSERT_TRUE(router.Resolve(ShapeA(5.0)).ok());
  auto overflow = router.Resolve(ShapeB(1.0, 2.0));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(),
            common::StatusCode::kResourceExhausted);
  // Existing routes keep serving at the limit.
  EXPECT_TRUE(router.Resolve(ShapeA(30.0)).ok());
}

TEST(ModelRouter, ForcedPolicyMapsUnknownShapesToTheDefaultRoute) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouterOptions opts;
  opts.policy = RoutePolicy::kForced;
  ModelRouter router(std::move(opts));

  // No default installed yet: rejected, not crashed.
  EXPECT_FALSE(router.Resolve(ShapeA(5.0)).ok());

  const auto fallback = WrapServing(Postgres(catalog), 3);
  router.SetDefaultRoute(fallback);
  auto resolved = router.Resolve(ShapeA(5.0));
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->route_id, 0u);              // the common feature space
  EXPECT_NE(resolved->fss, 0u);                   // the hash is still reported
  EXPECT_EQ(resolved->serving.get(), fallback.get());
  EXPECT_EQ(router.NumRoutes(), 0u);              // nothing was memorized
  EXPECT_EQ(router.FindRoute(0).get(), fallback.get());
}

TEST(ModelRouter, ControlledPolicyServesOnlyPreRegisteredShapes) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouterOptions opts;
  opts.policy = RoutePolicy::kControlled;
  ModelRouter router(std::move(opts));

  const uint64_t fss_a = FeatureSpaceHash(ShapeA(0.0));
  QFCARD_CHECK_OK(router.AddRoute(fss_a, WrapServing(Postgres(catalog), 1),
                                  "shape-a"));
  EXPECT_FALSE(router.AddRoute(fss_a, WrapServing(Postgres(catalog), 2)).ok());
  EXPECT_FALSE(router.AddRoute(0, WrapServing(Postgres(catalog), 2)).ok());

  EXPECT_TRUE(router.Resolve(ShapeA(42.0)).ok());
  auto rejected = router.Resolve(ShapeB(1.0, 2.0));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(router.RouteLabel(fss_a), "shape-a");
}

TEST(ModelRouter, RouteHintOverridesHashing) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouter router(SharedModelOptions(Postgres(catalog)));
  const auto opened = router.Resolve(ShapeA(5.0));
  ASSERT_TRUE(opened.ok());

  // A ShapeB query pinned to ShapeA's route by hint lands there.
  auto hinted = router.Resolve(ShapeB(1.0, 2.0), {}, opened->route_id);
  ASSERT_TRUE(hinted.ok());
  EXPECT_EQ(hinted->route_id, opened->route_id);
  EXPECT_EQ(router.NumRoutes(), 1u);
}

// --- Request/response API --------------------------------------------------

TEST(RequestApi, BaseEstimatorDefaultsMatchEstimateCard) {
  const storage::Catalog catalog = ServerCatalog();
  const auto model = Postgres(catalog);

  est::EstimateRequest request;
  request.query = ShapeA(5.0);
  auto response = model->Estimate(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->estimate, model->EstimateCard(ShapeA(5.0)).value());
  // A bare estimator has no route or published version to report.
  EXPECT_EQ(response->route_id, 0u);
  EXPECT_EQ(response->model_version, 0u);
  EXPECT_GE(response->latency_seconds, 0.0);
}

TEST(RequestApi, ServingEstimatorStampsVersionAndForwardsLegacyBatch) {
  const storage::Catalog catalog = ServerCatalog();
  const ServingEstimator serving(Postgres(catalog), /*version=*/7);

  std::vector<est::EstimateRequest> requests;
  std::vector<query::Query> queries;
  for (int i = 0; i < 6; ++i) {
    est::EstimateRequest request;
    request.query = ShapeA(3.0 * i);
    queries.push_back(request.query);
    requests.push_back(std::move(request));
  }
  auto responses = serving.EstimateRequests(requests);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  // The deprecated bare overload forwards to the request API, so the two
  // must agree exactly (docs/batch_api.md).
  const std::vector<double> bare = serving.EstimateBatch(queries).value();
  ASSERT_EQ(responses->size(), bare.size());
  for (size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ((*responses)[i].estimate, bare[i]);
    EXPECT_EQ((*responses)[i].model_version, 7u);
  }
}

// --- The server ------------------------------------------------------------

TEST(EstimationServer, ServesAndReportsProvenance) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouter router(SharedModelOptions(Postgres(catalog), /*version=*/4));
  EstimationServer server(&router);
  server.Start();

  est::EstimateRequest request;
  request.query = ShapeA(12.0);
  auto response = server.Estimate(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->route_id, FeatureSpaceHash(request.query));
  EXPECT_EQ(response->model_version, 4u);
  EXPECT_GE(response->latency_seconds, 0.0);
  server.Stop();
  EXPECT_GE(server.BatchesFlushed(), 1u);

  // A stopped server rejects instead of hanging; a restarted one serves.
  EXPECT_FALSE(server.Estimate(request).ok());
  server.Start();
  EXPECT_TRUE(server.Estimate(request).ok());
  server.Stop();
}

TEST(EstimationServer, RoutingRejectionsPropagateToClients) {
  ModelRouterOptions opts;
  opts.policy = RoutePolicy::kControlled;  // empty route table: reject all
  ModelRouter router(std::move(opts));
  EstimationServer server(&router);
  server.Start();
  est::EstimateRequest request;
  request.query = ShapeA(1.0);
  auto response = server.Estimate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(),
            common::StatusCode::kFailedPrecondition);
  server.Stop();
}

// The tentpole guarantee: micro-batching is unobservable. Every response
// from the server must be byte-identical to the direct answer of the
// route's model, however requests interleave across client threads.
void CheckServerMatchesDirect(
    std::shared_ptr<const est::CardinalityEstimator> model,
    int client_threads) {
  ModelRouter router(SharedModelOptions(model));
  EstimationServerOptions sopts;
  sopts.max_batch = 8;  // small batches force multi-flush interleavings
  EstimationServer server(&router, sopts);
  server.Start();

  std::vector<std::thread> clients;
  std::vector<std::string> failures(static_cast<size_t>(client_threads));
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      // Each client alternates shapes so batches from different threads
      // coalesce on shared routes.
      std::vector<est::EstimateRequest> requests;
      std::vector<query::Query> queries;
      for (int i = 0; i < 24; ++i) {
        est::EstimateRequest request;
        request.query = i % 2 == 0 ? ShapeA(2.0 * i + t, 5.0 + t)
                                   : ShapeB(i % 11, (i + t) % 13);
        queries.push_back(request.query);
        requests.push_back(std::move(request));
      }
      const std::vector<double> direct =
          model->EstimateBatch(queries).value();
      const auto via_server = server.EstimateMany(requests);
      for (size_t i = 0; i < queries.size(); ++i) {
        if (!via_server[i].ok()) {
          failures[static_cast<size_t>(t)] =
              via_server[i].status().ToString();
          return;
        }
        if (via_server[i].value().estimate != direct[i]) {
          failures[static_cast<size_t>(t)] =
              "estimate mismatch at query " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "") << "with " << client_threads << " clients";
  }
}

TEST(EstimationServer, BatchingMatchesDirectPostgres) {
  const storage::Catalog catalog = ServerCatalog();
  const auto model = Postgres(catalog);
  for (const int clients : {1, 2, 8}) {
    CheckServerMatchesDirect(model, clients);
  }
}

TEST(EstimationServer, BatchingMatchesDirectTrainedGb) {
  const storage::Catalog catalog = ServerCatalog();
  // A small trained model: the batch path goes through featurization and
  // model inference, not just statistics lookups.
  std::vector<query::Query> train;
  for (int i = 0; i < 120; ++i) {
    train.push_back(i % 2 == 0 ? ShapeA(i % 80, 4.0 + i % 9)
                               : ShapeB(i % 11, i % 13));
  }
  const auto labeled =
      workload::LabelOnTable(catalog.table(0), train, /*drop_empty=*/false)
          .value();
  est::EstimatorOptions eopts;
  eopts.gbm.num_trees = 12;
  auto gb = est::MakeEstimator("gb+complex", catalog, eopts).value();
  {
    std::vector<query::Query> qs;
    std::vector<double> cards;
    for (const auto& lq : labeled) {
      qs.push_back(lq.query);
      cards.push_back(lq.card);
    }
    QFCARD_CHECK_OK(gb->Train(qs, cards, 0.1, 5));
  }
  const std::shared_ptr<const est::CardinalityEstimator> model =
      std::move(gb);
  for (const int clients : {1, 2, 8}) {
    CheckServerMatchesDirect(model, clients);
  }
}

TEST(EstimationServer, QueueFullRejectsAndStopDrains) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouter router(SharedModelOptions(Postgres(catalog)));
  EstimationServerOptions sopts;
  sopts.num_workers = 0;  // nothing flushes until Stop() drains
  sopts.max_pending = 2;
  EstimationServer server(&router, sopts);
  server.Start();

  std::vector<est::EstimateRequest> requests(3);
  for (auto& request : requests) request.query = ShapeA(5.0);
  std::vector<common::StatusOr<est::EstimateResponse>> results;
  std::thread client(
      [&] { results = server.EstimateMany(requests); });
  // The first two admissions queue up; the third bounced immediately. The
  // client is now blocked until the Stop() drain answers the queued two.
  while (server.PendingRequests() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  client.join();

  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(),
            common::StatusCode::kResourceExhausted);
  EXPECT_EQ(server.PendingRequests(), 0u);
}

// --- Request-scoped tracing ------------------------------------------------

// Small trained GB model so the traced batch path exercises featurization
// and inference (estimate.featurize / estimate.predict spans), not just
// statistics lookups.
std::shared_ptr<const est::CardinalityEstimator> TrainedGb(
    const storage::Catalog& catalog) {
  std::vector<query::Query> train;
  for (int i = 0; i < 60; ++i) {
    train.push_back(i % 2 == 0 ? ShapeA(i % 80, 4.0 + i % 9)
                               : ShapeB(i % 11, i % 13));
  }
  const auto labeled =
      workload::LabelOnTable(catalog.table(0), train, /*drop_empty=*/false)
          .value();
  est::EstimatorOptions eopts;
  eopts.gbm.num_trees = 8;
  auto gb = est::MakeEstimator("gb+complex", catalog, eopts).value();
  std::vector<query::Query> qs;
  std::vector<double> cards;
  for (const auto& lq : labeled) {
    qs.push_back(lq.query);
    cards.push_back(lq.card);
  }
  QFCARD_CHECK_OK(gb->Train(qs, cards, 0.1, 5));
  return std::shared_ptr<const est::CardinalityEstimator>(std::move(gb));
}

class TracedServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(true);
    obs::TraceBuffer::Global().Reset();
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::TraceBuffer::Global().Reset();
  }
};

// Follows child edges from `from` looking for a span named `name`.
bool SubtreeContains(
    const std::map<uint64_t, std::vector<const obs::SpanRecord*>>& children,
    uint64_t from, const std::string& name) {
  std::vector<uint64_t> frontier{from};
  while (!frontier.empty()) {
    const uint64_t id = frontier.back();
    frontier.pop_back();
    const auto it = children.find(id);
    if (it == children.end()) continue;
    for (const obs::SpanRecord* child : it->second) {
      if (child->name == name) return true;
      frontier.push_back(child->id);
    }
  }
  return false;
}

// The tentpole guarantee for tracing: a 2-client micro-batched run yields
// one fully connected span tree per request ACROSS the thread boundary —
// serve.submit and serve.queue_wait on the client side, serve.batch and the
// estimate.* spans on the worker side, all under the serve.request root,
// with the batch span linking every member trace. No orphans.
TEST_F(TracedServerTest, TwoClientMicroBatchedRunIsFullyConnected) {
  const storage::Catalog catalog = ServerCatalog();
  const auto model = TrainedGb(catalog);
  ModelRouter router(SharedModelOptions(model));
  EstimationServerOptions sopts;
  sopts.max_batch = 4;  // force several micro-batches per client
  EstimationServer server(&router, sopts);
  server.Start();

  constexpr int kClients = 2;
  constexpr int kPerClient = 16;
  std::vector<std::vector<common::StatusOr<est::EstimateResponse>>> results(
      kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<est::EstimateRequest> requests;
      for (int i = 0; i < kPerClient; ++i) {
        est::EstimateRequest request;
        request.query = i % 2 == 0 ? ShapeA(2.0 * i + t, 5.0 + t)
                                   : ShapeB(i % 11, (i + t) % 13);
        requests.push_back(std::move(request));
      }
      results[static_cast<size_t>(t)] = server.EstimateMany(requests);
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  const std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::Global().Snapshot();
  std::map<uint64_t, const obs::SpanRecord*> by_id;
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> children;
  for (const obs::SpanRecord& s : spans) by_id[s.id] = &s;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_id != 0) {
      // No orphans: every parent reference resolves inside the dump.
      EXPECT_EQ(by_id.count(s.parent_id), 1u)
          << "orphaned span " << s.id << " (" << s.name << ")";
      children[s.parent_id].push_back(&s);
    }
  }
  // serve.batch spans, indexed by every trace they served (own + links).
  std::map<uint64_t, const obs::SpanRecord*> batch_by_trace;
  for (const obs::SpanRecord& s : spans) {
    if (s.name != "serve.batch") continue;
    batch_by_trace[s.trace_id] = &s;
    for (const uint64_t link : s.links) batch_by_trace[link] = &s;
  }

  for (const auto& client : results) {
    ASSERT_EQ(client.size(), static_cast<size_t>(kPerClient));
    for (const auto& response : client) {
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      const uint64_t trace = response->trace_id;
      ASSERT_NE(trace, 0u);
      // The request root exists, spans the full latency, and is clean.
      const auto root_it = by_id.find(trace);
      ASSERT_NE(root_it, by_id.end());
      EXPECT_EQ(root_it->second->name, "serve.request");
      EXPECT_FALSE(root_it->second->error);
      // The worker-side batch span serves this trace and reaches the
      // estimator: the tree is connected across the thread boundary.
      const auto batch_it = batch_by_trace.find(trace);
      ASSERT_NE(batch_it, batch_by_trace.end())
          << "no serve.batch served trace " << trace;
      EXPECT_TRUE(
          SubtreeContains(children, batch_it->second->id, "estimate.batch"));
      // Latency attribution came back with the response.
      EXPECT_GE(response->stages.queue_wait_seconds, 0.0);
      EXPECT_GT(response->stages.batch_exec_seconds, 0.0);
      EXPECT_GT(response->stages.featurize_seconds, 0.0);
      EXPECT_GT(response->stages.predict_seconds, 0.0);
      EXPECT_GE(response->latency_seconds,
                response->stages.batch_exec_seconds);
    }
  }
  // Every request contributed a queue-wait span under its root.
  int queue_waits = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "serve.queue_wait") ++queue_waits;
  }
  EXPECT_EQ(queue_waits, kClients * kPerClient);
}

// The span-tree SHAPE (multiset of parent-name -> child-name edges) must not
// depend on the thread-pool size: parallelism inside featurize/predict moves
// work between threads but never invents or drops spans.
std::multiset<std::string> RunTracedWorkloadAndCollectShape(
    const std::shared_ptr<const est::CardinalityEstimator>& model,
    int pool_threads) {
  common::SetGlobalThreads(pool_threads);
  obs::TraceBuffer::Global().Reset();
  ModelRouter router(SharedModelOptions(model));
  EstimationServer server(&router);
  server.Start();
  for (int i = 0; i < 12; ++i) {
    est::EstimateRequest request;
    request.query = i % 2 == 0 ? ShapeA(3.0 * i, 6.0) : ShapeB(i % 7, i % 5);
    QFCARD_CHECK_OK(server.Estimate(request).status());
  }
  server.Stop();
  const std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::Global().Snapshot();
  std::map<uint64_t, std::string> names;
  for (const obs::SpanRecord& s : spans) names[s.id] = s.name;
  std::multiset<std::string> shape;
  for (const obs::SpanRecord& s : spans) {
    const auto parent = names.find(s.parent_id);
    const std::string parent_name =
        s.parent_id == 0 ? "(root)"
        : parent != names.end() ? parent->second
                                : "(missing)";
    shape.insert(parent_name + " > " + s.name);
  }
  common::SetGlobalThreads(1);
  return shape;
}

TEST_F(TracedServerTest, SpanTreeShapeIsIdenticalAcrossPoolSizes) {
  const storage::Catalog catalog = ServerCatalog();
  const auto model = TrainedGb(catalog);
  const std::multiset<std::string> serial =
      RunTracedWorkloadAndCollectShape(model, 1);
  const std::multiset<std::string> parallel =
      RunTracedWorkloadAndCollectShape(model, 8);
  EXPECT_EQ(serial, parallel);
  // Sanity: the canonical edges of the request tree are all present.
  EXPECT_EQ(serial.count("(root) > serve.request"), 12u);
  EXPECT_EQ(serial.count("serve.request > serve.submit"), 12u);
  EXPECT_EQ(serial.count("serve.request > serve.queue_wait"), 12u);
  EXPECT_EQ(serial.count("serve.request > serve.batch"), 12u);
  EXPECT_GE(serial.count("serve.batch > estimate.batch"), 12u);
}

TEST(EstimationServer, DeadlineFlushesPartialBatches) {
  const storage::Catalog catalog = ServerCatalog();
  ModelRouter router(SharedModelOptions(Postgres(catalog)));
  EstimationServerOptions sopts;
  sopts.max_batch = 1024;  // size alone would never flush a single request
  sopts.flush_deadline_seconds = 0.002;
  EstimationServer server(&router, sopts);
  server.Start();
  est::EstimateRequest request;
  request.query = ShapeA(30.0);
  // Completion of a lone request proves the deadline path fires.
  EXPECT_TRUE(server.Estimate(request).ok());
  server.Stop();
}

}  // namespace
}  // namespace qfcard::serve
