// Tests for the failure minimizer (src/testing/shrink.h): a planted failure
// inside a deliberately bloated query must shrink to the minimal reproducer,
// and the minimizer must never leave the failing set.

#include "testing/shrink.h"

#include <string>

#include "gtest/gtest.h"
#include "test_util.h"

namespace qfcard::testing {
namespace {

using testutil::AddCompound;
using testutil::AddPredicate;
using testutil::SingleTableQuery;
using testutil::SmallCatalog;

// "Fails" iff the query still contains an equality on column 1 with value 42.
bool HasPlantedPredicate(const query::Query& q) {
  for (const query::CompoundPredicate& cp : q.predicates) {
    for (const query::ConjunctiveClause& clause : cp.disjuncts) {
      for (const query::SimplePredicate& p : clause.preds) {
        if (p.col.column == 1 && p.op == query::CmpOp::kEq && p.value == 42) {
          return true;
        }
      }
    }
  }
  return false;
}

query::Query BloatedQuery() {
  query::Query q = SingleTableQuery("small");
  AddPredicate(q, 0, query::CmpOp::kGe, 2);
  AddCompound(q, 0, {{{query::CmpOp::kLe, 7}}, {{query::CmpOp::kEq, 9}}});
  // The needle hides in the middle of a three-clause disjunction, inside a
  // two-predicate clause.
  AddCompound(q, 1,
              {{{query::CmpOp::kLe, 90}},
               {{query::CmpOp::kEq, 42}, {query::CmpOp::kGe, 0}},
               {{query::CmpOp::kEq, 10}}});
  AddPredicate(q, 1, query::CmpOp::kNe, 30);
  q.group_by.push_back(query::ColumnRef{0, 0});
  q.group_by.push_back(query::ColumnRef{0, 1});
  return q;
}

TEST(ShrinkTest, ShrinksToMinimalReproducer) {
  const query::Query minimal = ShrinkQuery(BloatedQuery(), HasPlantedPredicate);
  EXPECT_TRUE(HasPlantedPredicate(minimal));
  ASSERT_EQ(minimal.predicates.size(), 1u);
  ASSERT_EQ(minimal.predicates[0].disjuncts.size(), 1u);
  ASSERT_EQ(minimal.predicates[0].disjuncts[0].preds.size(), 1u);
  const query::SimplePredicate& p = minimal.predicates[0].disjuncts[0].preds[0];
  EXPECT_EQ(p.col.column, 1);
  EXPECT_EQ(p.op, query::CmpOp::kEq);
  EXPECT_EQ(p.value, 42);
  EXPECT_TRUE(minimal.group_by.empty());
  EXPECT_EQ(minimal.tables.size(), 1u);
}

TEST(ShrinkTest, NonFailingQueryReturnedUnchanged) {
  query::Query q = SingleTableQuery("small");
  AddPredicate(q, 0, query::CmpOp::kGe, 2);
  const query::Query out = ShrinkQuery(q, HasPlantedPredicate);
  EXPECT_TRUE(out == q);
}

TEST(ShrinkTest, AlwaysFailingShrinksToEmptyScan) {
  const query::Query minimal =
      ShrinkQuery(BloatedQuery(), [](const query::Query&) { return true; });
  EXPECT_TRUE(minimal.predicates.empty());
  EXPECT_TRUE(minimal.group_by.empty());
  EXPECT_TRUE(minimal.joins.empty());
}

TEST(ShrinkTest, DropsUnreferencedTrailingTableAndJoins) {
  query::Query q;
  q.tables.push_back(query::TableRef{"small", "small"});
  q.tables.push_back(query::TableRef{"small", "s2"});
  q.joins.push_back(
      query::JoinPredicate{query::ColumnRef{0, 0}, query::ColumnRef{1, 0}});
  AddPredicate(q, 0, query::CmpOp::kEq, 3);  // on table 0 only

  const auto fails = [](const query::Query& cand) {
    for (const query::CompoundPredicate& cp : cand.predicates) {
      for (const query::ConjunctiveClause& clause : cp.disjuncts) {
        for (const query::SimplePredicate& p : clause.preds) {
          if (p.op == query::CmpOp::kEq && p.value == 3) return true;
        }
      }
    }
    return false;
  };
  const query::Query minimal = ShrinkQuery(q, fails);
  EXPECT_EQ(minimal.tables.size(), 1u);
  EXPECT_TRUE(minimal.joins.empty());
  ASSERT_EQ(minimal.predicates.size(), 1u);
}

TEST(ShrinkTest, ReproducerMentionsSqlAndReplayLine) {
  const storage::Catalog catalog = SmallCatalog();
  query::Query q = SingleTableQuery("small");
  AddPredicate(q, 1, query::CmpOp::kEq, 42);
  const std::string repro = DescribeReproducer(q, catalog, 20260806, 17);
  EXPECT_NE(repro.find("sql: "), std::string::npos) << repro;
  EXPECT_NE(repro.find("b = 42"), std::string::npos) << repro;
  EXPECT_NE(repro.find("replay: qfcard_fuzz --seed=20260806 --round=17"),
            std::string::npos)
      << repro;
}

TEST(ShrinkTest, ReproducerFallsBackToStructureForEmptyInList) {
  const storage::Catalog catalog = SmallCatalog();
  query::Query q = SingleTableQuery("small");
  query::CompoundPredicate cp;
  cp.col = query::ColumnRef{0, 0};
  q.predicates.push_back(cp);  // zero disjuncts: not expressible as SQL
  const std::string repro = DescribeReproducer(q, catalog, 1, 0);
  EXPECT_NE(repro.find("not expressible as SQL"), std::string::npos) << repro;
  EXPECT_NE(repro.find("replay: qfcard_fuzz --seed=1 --round=0"),
            std::string::npos);
}

}  // namespace
}  // namespace qfcard::testing
