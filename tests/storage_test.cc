#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/csv.h"
#include "storage/table.h"

namespace qfcard::storage {
namespace {

Column MakeIntColumn(const std::string& name, std::vector<double> values) {
  Column col(name, ColumnType::kInt64);
  col.AppendBatch(values);
  return col;
}

TEST(DictionaryTest, CodesRespectLexicographicOrder) {
  Dictionary dict = Dictionary::FromValues({"cherry", "apple", "banana", "apple"});
  EXPECT_EQ(dict.size(), 3);
  ASSERT_TRUE(dict.Code("apple").ok());
  EXPECT_EQ(dict.Code("apple").value(), 0);
  EXPECT_EQ(dict.Code("banana").value(), 1);
  EXPECT_EQ(dict.Code("cherry").value(), 2);
  EXPECT_EQ(dict.Value(1), "banana");
}

TEST(DictionaryTest, MissingValueIsNotFound) {
  Dictionary dict = Dictionary::FromValues({"a", "b"});
  EXPECT_EQ(dict.Code("zzz").status().code(), common::StatusCode::kNotFound);
}

TEST(DictionaryTest, LowerBoundCode) {
  Dictionary dict = Dictionary::FromValues({"b", "d", "f"});
  EXPECT_EQ(dict.LowerBoundCode("a"), 0);
  EXPECT_EQ(dict.LowerBoundCode("b"), 0);
  EXPECT_EQ(dict.LowerBoundCode("c"), 1);
  EXPECT_EQ(dict.LowerBoundCode("f"), 2);
  EXPECT_EQ(dict.LowerBoundCode("z"), 3);
}

TEST(DictionaryTest, PrefixCodeRangeCoversExactlyThePrefixedValues) {
  Dictionary dict = Dictionary::FromValues(
      {"alpha", "alpine", "alto", "beta", "betray", "gamma"});
  // "al" covers alpha/alpine/alto: [0, 3).
  PrefixRange al = dict.PrefixCodeRange("al");
  EXPECT_EQ(al.lo, 0);
  ASSERT_TRUE(al.bounded);
  EXPECT_EQ(al.hi, 3);
  // "bet" covers beta/betray: [3, 5).
  PrefixRange bet = dict.PrefixCodeRange("bet");
  EXPECT_EQ(bet.lo, 3);
  ASSERT_TRUE(bet.bounded);
  EXPECT_EQ(bet.hi, 5);
  // A full value is its own prefix: [5, 6).
  PrefixRange gamma = dict.PrefixCodeRange("gamma");
  EXPECT_EQ(gamma.lo, 5);
  ASSERT_TRUE(gamma.bounded);
  EXPECT_EQ(gamma.hi, 6);
  // No value starts with "z": an empty interval past the end.
  PrefixRange z = dict.PrefixCodeRange("z");
  EXPECT_EQ(z.lo, 6);
  ASSERT_TRUE(z.bounded);
  EXPECT_EQ(z.hi, 6);
}

TEST(DictionaryTest, PrefixCodeRangeEmptyPrefixMatchesEverything) {
  Dictionary dict = Dictionary::FromValues({"a", "b", "c"});
  const PrefixRange all = dict.PrefixCodeRange("");
  EXPECT_EQ(all.lo, 0);
  // "" has no lexicographic successor, so the range is unbounded above.
  EXPECT_FALSE(all.bounded);
}

TEST(DictionaryTest, PrefixCodeRangeSkipsUnincrementableBytes) {
  // A prefix ending in 0xFF has no same-length successor; the successor is
  // computed by incrementing the last incrementable byte ("a\xff" -> "b").
  Dictionary dict = Dictionary::FromValues({"a", "a\xff z", "b", "c"});
  const PrefixRange range = dict.PrefixCodeRange("a\xff");
  EXPECT_EQ(range.lo, 1);
  ASSERT_TRUE(range.bounded);
  EXPECT_EQ(range.hi, 2);  // successor "b"
  // An all-0xFF prefix cannot be incremented at all: unbounded.
  const PrefixRange top = dict.PrefixCodeRange("\xff\xff");
  EXPECT_FALSE(top.bounded);
  EXPECT_EQ(top.lo, 4);
}

TEST(ColumnTest, StatsComputedAndCached) {
  Column col = MakeIntColumn("a", {5, 1, 9, 5, 3});
  const ColumnStats& stats = col.GetStats();
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 9);
  EXPECT_EQ(stats.distinct, 4);
  EXPECT_EQ(stats.rows, 5);
}

TEST(ColumnTest, StatsRefreshAfterAppend) {
  Column col = MakeIntColumn("a", {1, 2});
  EXPECT_EQ(col.GetStats().max, 2);
  col.Append(10);
  EXPECT_EQ(col.GetStats().max, 10);
  EXPECT_EQ(col.GetStats().rows, 3);
}

TEST(ColumnTest, IntegralityByType) {
  EXPECT_TRUE(Column("a", ColumnType::kInt64).integral());
  EXPECT_TRUE(Column("a", ColumnType::kDictString).integral());
  EXPECT_FALSE(Column("a", ColumnType::kFloat64).integral());
}

TEST(ColumnTest, EmptyColumnStats) {
  Column col("a", ColumnType::kInt64);
  const ColumnStats& stats = col.GetStats();
  EXPECT_EQ(stats.rows, 0);
  EXPECT_EQ(stats.distinct, 0);
}

TEST(TableTest, AddAndLookupColumns) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1, 2})).ok());
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("b", {3, 4})).ok());
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.num_rows(), 2);
  ASSERT_TRUE(t.ColumnIndex("b").ok());
  EXPECT_EQ(t.ColumnIndex("b").value(), 1);
  EXPECT_EQ(t.ColumnIndex("zz").status().code(), common::StatusCode::kNotFound);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1})).ok());
  EXPECT_EQ(t.AddColumn(MakeIntColumn("a", {2})).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(TableTest, ValidateCatchesRaggedColumns) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1, 2})).ok());
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("b", {3})).ok());
  EXPECT_EQ(t.Validate().code(), common::StatusCode::kFailedPrecondition);
}

TEST(CatalogTest, AddAndResolve) {
  Catalog cat;
  Table t("orders");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1})).ok());
  ASSERT_TRUE(cat.AddTable(std::move(t)).ok());
  EXPECT_EQ(cat.num_tables(), 1);
  ASSERT_TRUE(cat.GetTable("orders").ok());
  EXPECT_EQ(cat.TableIndex("orders").value(), 0);
  EXPECT_EQ(cat.GetTable("nope").status().code(),
            common::StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat;
  Table t1("t");
  ASSERT_TRUE(cat.AddTable(std::move(t1)).ok());
  Table t2("t");
  EXPECT_EQ(cat.AddTable(std::move(t2)).code(),
            common::StatusCode::kInvalidArgument);
}

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    return (std::filesystem::temp_directory_path() /
            ("qfcard_csv_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv"))
        .string();
  }
  void TearDown() override { std::remove(TempPath().c_str()); }
};

TEST_F(CsvTest, RoundTripTypedColumns) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("ints", {1, -2, 3})).ok());
  Column floats("floats", ColumnType::kFloat64);
  floats.AppendBatch({1.5, 2.25, -0.5});
  ASSERT_TRUE(t.AddColumn(std::move(floats)).ok());
  Dictionary dict = Dictionary::FromValues({"x", "y", "z"});
  Column strings("strings", ColumnType::kDictString);
  strings.Append(static_cast<double>(dict.Code("y").value()));
  strings.Append(static_cast<double>(dict.Code("x").value()));
  strings.Append(static_cast<double>(dict.Code("z").value()));
  strings.SetDictionary(std::move(dict));
  ASSERT_TRUE(t.AddColumn(std::move(strings)).ok());

  ASSERT_TRUE(WriteCsv(t, TempPath()).ok());
  const auto loaded_or = ReadCsv(TempPath(), "t2");
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const Table& loaded = loaded_or.value();
  EXPECT_EQ(loaded.num_rows(), 3);
  EXPECT_EQ(loaded.column(0).type(), ColumnType::kInt64);
  EXPECT_EQ(loaded.column(1).type(), ColumnType::kFloat64);
  EXPECT_EQ(loaded.column(2).type(), ColumnType::kDictString);
  EXPECT_EQ(loaded.column(0).Get(1), -2);
  EXPECT_DOUBLE_EQ(loaded.column(1).Get(2), -0.5);
  EXPECT_EQ(loaded.column(2).dictionary().Value(
                static_cast<int64_t>(loaded.column(2).Get(0))),
            "y");
}

TEST_F(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCsv("/nonexistent/nope.csv", "t").status().code(),
            common::StatusCode::kNotFound);
}

}  // namespace
}  // namespace qfcard::storage
