#ifndef QFCARD_TESTS_TEST_UTIL_H_
#define QFCARD_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace qfcard::testutil {

/// Builds an INT64 column from values.
inline storage::Column IntColumn(const std::string& name,
                                 std::vector<double> values) {
  storage::Column col(name, storage::ColumnType::kInt64);
  col.AppendBatch(values);
  return col;
}

/// Builds a FLOAT64 column from values.
inline storage::Column FloatColumn(const std::string& name,
                                   std::vector<double> values) {
  storage::Column col(name, storage::ColumnType::kFloat64);
  col.AppendBatch(values);
  return col;
}

/// Builds a single-table query skeleton over `table_name`.
inline query::Query SingleTableQuery(const std::string& table_name) {
  query::Query q;
  q.tables.push_back(query::TableRef{table_name, table_name});
  return q;
}

/// Appends a single-clause compound predicate on column `col`.
inline void AddPredicate(query::Query& q, int col, query::CmpOp op,
                         double value) {
  const query::ColumnRef ref{0, col};
  query::CompoundPredicate cp;
  cp.col = ref;
  query::ConjunctiveClause clause;
  clause.preds.push_back(query::SimplePredicate{ref, op, value});
  cp.disjuncts.push_back(std::move(clause));
  q.predicates.push_back(std::move(cp));
}

/// Appends a compound predicate with explicit clauses, each a list of
/// (op, value) pairs, on column `col`.
inline void AddCompound(
    query::Query& q, int col,
    const std::vector<std::vector<std::pair<query::CmpOp, double>>>& clauses) {
  const query::ColumnRef ref{0, col};
  query::CompoundPredicate cp;
  cp.col = ref;
  for (const auto& clause_spec : clauses) {
    query::ConjunctiveClause clause;
    for (const auto& [op, value] : clause_spec) {
      clause.preds.push_back(query::SimplePredicate{ref, op, value});
    }
    cp.disjuncts.push_back(std::move(clause));
  }
  q.predicates.push_back(std::move(cp));
}

/// A tiny two-column table: a = 0..9, b = (0,10,20,...,90).
inline storage::Table SmallTable() {
  storage::Table t("small");
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(i);
    b.push_back(10.0 * i);
  }
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("a", a)));
  QFCARD_CHECK_OK(t.AddColumn(IntColumn("b", b)));
  return t;
}

/// Catalog holding SmallTable().
inline storage::Catalog SmallCatalog() {
  storage::Catalog cat;
  QFCARD_CHECK_OK(cat.AddTable(SmallTable()));
  return cat;
}

}  // namespace qfcard::testutil

#endif  // QFCARD_TESTS_TEST_UTIL_H_
