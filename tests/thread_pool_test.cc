#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace qfcard::common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, OrderPreservedBySlot) {
  ThreadPool pool(4);
  std::vector<int64_t> out(1000, -1);
  pool.ParallelFor(1000, [&](int64_t i) { out[static_cast<size_t>(i)] = i * 3; });
  for (int64_t i = 0; i < 1000; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * 3);
}

TEST(ThreadPoolTest, PoolOfOneMatchesSerial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int64_t> order;
  // A pool of 1 runs inline, so even execution order is the serial order.
  pool.ParallelFor(50, [&](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroAndOneIndexLoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](int64_t i) {
                                  if (i == 17) throw std::runtime_error("x17");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SmallestFailingIndexWinsAtEveryPoolSize) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.ParallelFor(64, [&](int64_t i) {
        ran++;
        if (i == 11 || i == 42) {
          throw std::runtime_error("i=" + std::to_string(i));
        }
      });
      FAIL() << "expected throw at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "i=11") << threads << " threads";
    }
    // Every index still ran despite the failures.
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPoolTest, ParallelForStatusReturnsSmallestIndexError) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    const Status status = pool.ParallelForStatus(64, [&](int64_t i) {
      if (i == 9 || i == 33) {
        return Status::InvalidArgument("i=" + std::to_string(i));
      }
      return Status::Ok();
    });
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("i=9"), std::string::npos)
        << status.ToString();
  }
}

TEST(ThreadPoolTest, ParallelForStatusOkWhenAllOk) {
  ThreadPool pool(4);
  std::vector<int> out(128, 0);
  QFCARD_CHECK_OK(pool.ParallelForStatus(128, [&](int64_t i) {
    out[static_cast<size_t>(i)] = 1;
    return Status::Ok();
  }));
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 128);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.ParallelFor(16, [&](int64_t outer) {
    pool.ParallelFor(16, [&](int64_t inner) {
      hits[static_cast<size_t>(outer * 16 + inner)]++;
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, OversubscribedPoolCompletesEveryTask) {
  // Far more threads than cores and far more tasks than threads: every
  // index must still run exactly once with no lost or duplicated slots.
  ThreadPool pool(32);
  constexpr int64_t kTasks = 20000;
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(kTasks, [&](int64_t i) {
    hits[static_cast<size_t>(i)]++;
    sum += i;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, HighestIndexFailurePropagates) {
  // The failing slot is the last index — the boundary where a pool that
  // mismanages its tail chunk would drop the exception.
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.ParallelFor(64, [&](int64_t i) {
        ran++;
        if (i == 63) throw std::runtime_error("i=63");
      });
      FAIL() << "expected throw at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "i=63") << threads << " threads";
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPoolTest, EnvZeroAndOneAreEquivalent) {
  // QFCARD_THREADS=0 and =1 must both mean "serial": same pool size and the
  // same inline execution order.
  const char* saved = std::getenv("QFCARD_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  std::vector<std::vector<int64_t>> orders;
  for (const char* value : {"0", "1"}) {
    ::setenv("QFCARD_THREADS", value, 1);
    EXPECT_EQ(ThreadPoolSizeFromEnv(), 1) << "QFCARD_THREADS=" << value;
    ThreadPool pool(ThreadPoolSizeFromEnv());
    std::vector<int64_t> order;
    pool.ParallelFor(64, [&](int64_t i) { order.push_back(i); });
    orders.push_back(std::move(order));
  }
  EXPECT_EQ(orders[0], orders[1]);

  if (saved != nullptr) {
    ::setenv("QFCARD_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("QFCARD_THREADS");
  }
}

TEST(ThreadPoolTest, SizeFromEnvParsing) {
  const char* saved = std::getenv("QFCARD_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("QFCARD_THREADS");
  EXPECT_EQ(ThreadPoolSizeFromEnv(), 1);
  ::setenv("QFCARD_THREADS", "4", 1);
  EXPECT_EQ(ThreadPoolSizeFromEnv(), 4);
  ::setenv("QFCARD_THREADS", "0", 1);
  EXPECT_EQ(ThreadPoolSizeFromEnv(), 1);
  ::setenv("QFCARD_THREADS", "-3", 1);
  EXPECT_EQ(ThreadPoolSizeFromEnv(), 1);
  ::setenv("QFCARD_THREADS", "notanumber", 1);
  EXPECT_EQ(ThreadPoolSizeFromEnv(), 1);

  if (saved != nullptr) {
    ::setenv("QFCARD_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("QFCARD_THREADS");
  }
}

TEST(ThreadPoolTest, SetGlobalThreadsRebuildsPool) {
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalPool().num_threads(), 3);
  std::vector<int64_t> out(200, -1);
  GlobalPool().ParallelFor(200,
                           [&](int64_t i) { out[static_cast<size_t>(i)] = i; });
  for (int64_t i = 0; i < 200; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalPool().num_threads(), 1);
}

// ---------------------------------------------------------------------------
// Trace-context handoff (common::PoolTraceBridge, installed by obs/trace.cc)
// ---------------------------------------------------------------------------

class PoolTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(true);
    obs::TraceBuffer::Global().Reset();
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::TraceBuffer::Global().Reset();
  }
};

TEST_F(PoolTraceTest, TaskSpansJoinTheSubmittersTrace) {
  ThreadPool pool(4);
  uint64_t submit_id = 0;
  uint64_t submit_trace = 0;
  {
    obs::TraceSpan submit("pool.submit");
    submit_id = submit.id();
    submit_trace = submit.context().trace_id;
    pool.ParallelFor(64, [](int64_t) { obs::TraceSpan task("pool.task"); });
  }
  int tasks = 0;
  for (const obs::SpanRecord& s : obs::TraceBuffer::Global().Snapshot()) {
    if (s.name != "pool.task") continue;
    ++tasks;
    // Whether the index ran on a worker or inline on the submitter, the
    // span parents under pool.submit and joins its trace.
    EXPECT_EQ(s.parent_id, submit_id);
    EXPECT_EQ(s.trace_id, submit_trace);
  }
  EXPECT_EQ(tasks, 64);
}

TEST_F(PoolTraceTest, LeakedTaskSpanDoesNotPoisonLaterTasks) {
  ThreadPool pool(4);
  // Round 1: one task "leaks" an unclosed span (heap-allocated, ended after
  // the assertions). Without the Release() restore at the task boundary,
  // the leaking thread's parent chain would still point at it, and every
  // span a later task opens on that thread would silently parent under a
  // span from a long-finished request.
  std::atomic<obs::TraceSpan*> leaked{nullptr};
  pool.ParallelFor(8, [&leaked](int64_t i) {
    if (i == 0) {
      leaked.store(new obs::TraceSpan("leaked"), std::memory_order_relaxed);
    } else {
      obs::TraceSpan task("round1");
    }
  });
  obs::TraceSpan* leaked_span = leaked.load(std::memory_order_relaxed);
  ASSERT_NE(leaked_span, nullptr);
  // The submitting thread's chain is clean again even if it ran index 0.
  EXPECT_FALSE(obs::CurrentTraceContext().valid());
  // Round 2: no span is open on the submitter, so every task span must be
  // a root of its own trace — never a child of the leaked span.
  pool.ParallelFor(8, [](int64_t) { obs::TraceSpan task("round2"); });
  int round2 = 0;
  for (const obs::SpanRecord& s : obs::TraceBuffer::Global().Snapshot()) {
    if (s.name != "round2") continue;
    ++round2;
    EXPECT_NE(s.parent_id, leaked_span->id());
    EXPECT_EQ(s.parent_id, 0u);
    EXPECT_EQ(s.trace_id, s.id);
  }
  EXPECT_EQ(round2, 8);
  delete leaked_span;  // closes and records it; owned here, not leaked
}

TEST_F(PoolTraceTest, SerialPoolKeepsTheChainInline) {
  ThreadPool pool(1);
  obs::TraceSpan submit("pool.submit");
  pool.ParallelFor(4, [](int64_t) { obs::TraceSpan task("inline.task"); });
  // Inline execution nests naturally; the chain is intact afterwards.
  EXPECT_EQ(obs::CurrentTraceContext().parent_span_id, submit.id());
  submit.End();
  int tasks = 0;
  for (const obs::SpanRecord& s : obs::TraceBuffer::Global().Snapshot()) {
    if (s.name != "inline.task") continue;
    ++tasks;
    EXPECT_EQ(s.parent_id, submit.id());
  }
  EXPECT_EQ(tasks, 4);
}

}  // namespace
}  // namespace qfcard::common
