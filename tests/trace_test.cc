// Tests for the obs stage-tracing layer (docs/observability.md): RAII span
// nesting and the per-thread parent chain, ring-buffer overflow keeping the
// newest spans, id stability across Reset + identical reruns (the property
// that makes "span 17" meaningful in a reproducer), End() idempotence, and
// gating when tracing is off.

#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/clock.h"

namespace qfcard::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(true);
    TraceBuffer::Global().Reset();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    TraceBuffer::Global().Reset();
  }
};

// Runs a fixed two-level workload; returns nothing — the buffer holds the
// result. Spans record at End (innermost first).
void RunNestedWorkload() {
  TraceSpan outer("estimate.batch");
  {
    TraceSpan inner("featurize.batch");
    TraceSpan innermost("featurize.partition");
  }
  TraceSpan sibling("estimate.predict");
}

TEST_F(TraceTest, NestedSpansLinkParentIds) {
  RunNestedWorkload();
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: innermost, inner, sibling, outer.
  const SpanRecord& innermost = spans[0];
  const SpanRecord& inner = spans[1];
  const SpanRecord& sibling = spans[2];
  const SpanRecord& outer = spans[3];
  EXPECT_EQ(innermost.name, "featurize.partition");
  EXPECT_EQ(inner.name, "featurize.batch");
  EXPECT_EQ(sibling.name, "estimate.predict");
  EXPECT_EQ(outer.name, "estimate.batch");
  EXPECT_EQ(outer.parent_id, 0u);  // root
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(innermost.parent_id, inner.id);
  // The sibling opened after `inner` closed, so it parents under outer
  // again — the chain pops correctly.
  EXPECT_EQ(sibling.parent_id, outer.id);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.start_s, 0.0);
    EXPECT_GE(s.duration_s, 0.0);
  }
  // Nested spans start no earlier than their parent.
  EXPECT_GE(inner.start_s, outer.start_s);
  EXPECT_GE(innermost.start_s, inner.start_s);
}

TEST_F(TraceTest, IdsAreStableAcrossResetAndIdenticalRerun) {
  RunNestedWorkload();
  const std::vector<SpanRecord> first = TraceBuffer::Global().Snapshot();
  TraceBuffer::Global().Reset();
  RunNestedWorkload();
  const std::vector<SpanRecord> second = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].parent_id, second[i].parent_id);
    EXPECT_EQ(first[i].name, second[i].name);
  }
  // The sequence restarts at 1: the outermost span (opened first, closed
  // last) carries id 1 in both runs.
  EXPECT_EQ(first.back().id, 1u);
}

TEST_F(TraceTest, OverflowKeepsTheNewestSpans) {
  TraceBuffer::Global().ResetWithCapacity(4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(i % 2 == 0 ? "even" : "odd");
  }
  TraceBuffer& buffer = TraceBuffer::Global();
  EXPECT_EQ(buffer.Recorded(), 10u);
  EXPECT_EQ(buffer.Dropped(), 6u);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The survivors are the last four spans (ids 7..10), oldest first.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, 7u + i);
  }
  TraceBuffer::Global().ResetWithCapacity(4096);
}

TEST_F(TraceTest, EndIsIdempotentAndEnablesEarlyDump) {
  TraceSpan span("cli.main");
  span.End();
  span.End();  // no double record
  {
    // After End, new spans must be roots again (the chain was popped).
    TraceSpan next("after");
    EXPECT_NE(next.id(), span.id());
  }
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "cli.main");
  EXPECT_EQ(spans[1].name, "after");
  EXPECT_EQ(spans[1].parent_id, 0u);
}  // span's destructor runs here and must not record a third entry

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  SetTraceEnabled(false);
  {
    TraceSpan span("ghost");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(TraceBuffer::Global().Recorded(), 0u);
  EXPECT_TRUE(TraceBuffer::Global().Snapshot().empty());
}

TEST_F(TraceTest, ThreadsHaveIndependentParentChains) {
  TraceSpan main_span("main.root");
  std::thread worker([] {
    // A span on another thread is a root: the parent chain is per-thread,
    // so it must NOT parent under main.root.
    TraceSpan span("worker.root");
  });
  worker.join();
  main_span.End();
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "worker.root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "main.root");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

// ---------------------------------------------------------------------------
// Request-scoped context propagation (docs/observability.md)
// ---------------------------------------------------------------------------

TEST_F(TraceTest, RootSpanStartsItsOwnTrace) {
  TraceSpan root("serve.submit");
  const TraceContext ctx = root.context();
  EXPECT_EQ(ctx.trace_id, root.id());  // trace id IS the root span id
  EXPECT_EQ(ctx.parent_span_id, root.id());
  EXPECT_TRUE(ctx.valid());
  // The thread-local context tracks the innermost open span.
  EXPECT_EQ(CurrentTraceContext().trace_id, root.id());
  EXPECT_EQ(CurrentTraceContext().parent_span_id, root.id());
  {
    TraceSpan child("featurize.batch");
    EXPECT_EQ(child.context().trace_id, root.id());  // inherits the trace
    EXPECT_EQ(CurrentTraceContext().parent_span_id, child.id());
  }
  root.End();
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST_F(TraceTest, ReattachCrossesThreadBoundary) {
  TraceContext handoff;
  uint64_t submit_id = 0;
  {
    TraceSpan submit("serve.submit");
    submit_id = submit.id();
    handoff = submit.context();
  }
  // The worker re-attaches: its span parents under the submit span and
  // joins the same trace, and spans it opens nest under it as usual —
  // exactly the serve.submit -> serve.batch handoff.
  std::thread worker([handoff] {
    TraceSpan batch("serve.batch", handoff);
    TraceSpan inner("estimate.batch");
    (void)inner;
  });
  worker.join();
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);  // submit, inner, batch (completion order)
  const SpanRecord& submit = spans[0];
  const SpanRecord& inner = spans[1];
  const SpanRecord& batch = spans[2];
  EXPECT_EQ(batch.parent_id, submit_id);
  EXPECT_EQ(batch.trace_id, submit.trace_id);
  EXPECT_EQ(inner.parent_id, batch.id);
  EXPECT_EQ(inner.trace_id, submit.trace_id);
  // Different threads recorded the two halves.
  EXPECT_NE(batch.thread_index, submit.thread_index);
}

TEST_F(TraceTest, ReattachRestoresTheLocalChain) {
  TraceSpan local("outer");
  {
    // Re-attaching to a foreign context must not disturb this thread's
    // chain once the span closes.
    TraceSpan foreign("serve.batch", TraceContext{999u, 999u});
    EXPECT_EQ(foreign.context().trace_id, 999u);
  }
  TraceSpan sibling("sibling");
  EXPECT_EQ(sibling.context().trace_id, local.context().trace_id);
  sibling.End();
  local.End();
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);  // sibling under outer
}

TEST_F(TraceTest, LinksErrorAndRouteAreRecorded) {
  {
    TraceSpan span("serve.batch");
    span.AddLink(7);
    span.AddLink(9);
    span.AddLink(span.context().trace_id);  // own trace: ignored
    span.AddLink(0);                        // invalid: ignored
    span.MarkError();
    span.SetRoute(0xabcdu);
  }
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].links, (std::vector<uint64_t>{7, 9}));
  EXPECT_TRUE(spans[0].error);
  EXPECT_EQ(spans[0].route, 0xabcdu);
}

TEST_F(TraceTest, RecordSpanAndTraceRootCloseOutARequest) {
  const uint64_t trace = MintTraceId();
  ASSERT_NE(trace, 0u);
  const TraceContext ctx{trace, trace};
  const Clock::time_point t0 = Now();
  const Clock::time_point t1 = Now();
  const uint64_t wait_id = RecordSpan("serve.queue_wait", ctx, t0, t1, 42u);
  EXPECT_NE(wait_id, 0u);
  RecordTraceRoot("serve.request", trace, t0, Now(), 42u, /*error=*/false);
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& wait = spans[0];
  const SpanRecord& root = spans[1];
  EXPECT_EQ(wait.id, wait_id);
  EXPECT_EQ(wait.parent_id, trace);
  EXPECT_EQ(wait.trace_id, trace);
  EXPECT_EQ(wait.route, 42u);
  EXPECT_EQ(root.id, trace);      // the minted id becomes the root span
  EXPECT_EQ(root.parent_id, 0u);  // a genuine root
  EXPECT_EQ(root.trace_id, trace);
  EXPECT_GE(root.duration_s, wait.duration_s);
}

TEST_F(TraceTest, DisabledTracingYieldsInvalidContexts) {
  SetTraceEnabled(false);
  EXPECT_EQ(MintTraceId(), 0u);
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceSpan span("ghost", TraceContext{1, 1});
  EXPECT_FALSE(span.context().valid());
  EXPECT_EQ(RecordSpan("ghost", TraceContext{1, 1}, Now(), Now()), 0u);
  RecordTraceRoot("ghost", 1, Now(), Now(), 0, false);
  EXPECT_EQ(TraceBuffer::Global().Recorded(), 0u);
}

TEST_F(TraceTest, ThreadIndexIsDenseAndStablePerThread) {
  const uint32_t mine = CurrentThreadIndex();
  EXPECT_EQ(CurrentThreadIndex(), mine);  // stable on re-ask
  uint32_t other = mine;
  std::thread worker([&other] { other = CurrentThreadIndex(); });
  worker.join();
  EXPECT_NE(other, mine);
}

// ---------------------------------------------------------------------------
// Tail sampling (keep slow/errored traces out of the eviction path)
// ---------------------------------------------------------------------------

TailSamplingOptions KeepSlowTraces() {
  TailSamplingOptions tail;
  tail.enabled = true;
  tail.latency_threshold_seconds = 0.010;
  return tail;
}

// Records a three-span trace (two children + root) whose root reports a
// synthetic 50ms latency — "slow" against the 10ms keep threshold, while
// incidental spans (every standalone span roots its own trace) stay fast
// and unkept. Returns the trace id.
uint64_t RecordRequestTrace(bool error) {
  const uint64_t trace = MintTraceId();
  const TraceContext ctx{trace, trace};
  const Clock::time_point end = Now();
  const Clock::time_point start = end - std::chrono::milliseconds(50);
  RecordSpan("serve.submit", ctx, start, end);
  RecordSpan("serve.queue_wait", ctx, start, end);
  RecordTraceRoot("serve.request", trace, start, end, 0, error);
  return trace;
}

TEST_F(TraceTest, TailSamplingRescuesKeptTracesFromEviction) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.ResetWithCapacity(4);
  buffer.SetTailSampling(KeepSlowTraces());
  const uint64_t kept = RecordRequestTrace(/*error=*/false);
  EXPECT_EQ(buffer.TailSampledTraces(), 1u);
  // Ring pressure: ten filler spans overwrite everything. The kept trace's
  // spans move to the side store instead of dying.
  for (int i = 0; i < 10; ++i) TraceSpan span("filler");
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  int from_kept_trace = 0;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == kept) ++from_kept_trace;
  }
  EXPECT_EQ(from_kept_trace, 3);  // submit + queue_wait + root all survive
  EXPECT_EQ(buffer.RetainedSpans(), 3u);
  EXPECT_EQ(buffer.TailDroppedSpans(), 0u);
  // Dropped counts only destroyed spans: 13 recorded, 4 in ring, 3 rescued.
  EXPECT_EQ(buffer.Recorded(), 13u);
  EXPECT_EQ(buffer.Dropped(), 6u);
  buffer.SetTailSampling(TailSamplingOptions{});
  buffer.ResetWithCapacity(4096);
}

TEST_F(TraceTest, TailSamplingIgnoresFastCleanTraces) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.ResetWithCapacity(4);
  TailSamplingOptions tail;
  tail.enabled = true;
  tail.latency_threshold_seconds = 1e9;  // nothing is that slow
  buffer.SetTailSampling(tail);
  const uint64_t fast = RecordRequestTrace(/*error=*/false);
  EXPECT_EQ(buffer.TailSampledTraces(), 0u);
  for (int i = 0; i < 10; ++i) TraceSpan span("filler");
  for (const SpanRecord& s : buffer.Snapshot()) {
    EXPECT_NE(s.trace_id, fast);  // evicted like anything else
  }
  EXPECT_EQ(buffer.RetainedSpans(), 0u);
  buffer.SetTailSampling(TailSamplingOptions{});
  buffer.ResetWithCapacity(4096);
}

TEST_F(TraceTest, TailSamplingKeepsErroredTracesRegardlessOfLatency) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.ResetWithCapacity(4);
  TailSamplingOptions tail;
  tail.enabled = true;
  tail.latency_threshold_seconds = 1e9;
  tail.keep_errors = true;
  buffer.SetTailSampling(tail);
  const uint64_t errored = RecordRequestTrace(/*error=*/true);
  EXPECT_EQ(buffer.TailSampledTraces(), 1u);
  for (int i = 0; i < 10; ++i) TraceSpan span("filler");
  int survivors = 0;
  for (const SpanRecord& s : buffer.Snapshot()) {
    if (s.trace_id == errored) ++survivors;
  }
  EXPECT_EQ(survivors, 3);
  buffer.SetTailSampling(TailSamplingOptions{});
  buffer.ResetWithCapacity(4096);
}

TEST_F(TraceTest, TailSamplingSideStoreIsBounded) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.ResetWithCapacity(4);
  TailSamplingOptions tail = KeepSlowTraces();
  tail.retained_capacity = 1;  // room to rescue exactly one span
  buffer.SetTailSampling(tail);
  RecordRequestTrace(/*error=*/false);
  for (int i = 0; i < 10; ++i) TraceSpan span("filler");
  EXPECT_EQ(buffer.RetainedSpans(), 1u);
  EXPECT_EQ(buffer.TailDroppedSpans(), 2u);  // the other two were lost
  buffer.SetTailSampling(TailSamplingOptions{});
  buffer.ResetWithCapacity(4096);
}

TEST_F(TraceTest, ResetClearsTailSamplingStateButKeepsThePolicy) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.ResetWithCapacity(4);
  buffer.SetTailSampling(KeepSlowTraces());
  RecordRequestTrace(/*error=*/false);
  for (int i = 0; i < 10; ++i) TraceSpan span("filler");
  EXPECT_GT(buffer.RetainedSpans(), 0u);
  buffer.Reset();
  EXPECT_EQ(buffer.RetainedSpans(), 0u);
  EXPECT_EQ(buffer.TailSampledTraces(), 0u);
  EXPECT_EQ(buffer.TailDroppedSpans(), 0u);
  EXPECT_TRUE(buffer.tail_sampling().enabled);  // policy survives Reset
  buffer.SetTailSampling(TailSamplingOptions{});
  buffer.ResetWithCapacity(4096);
}

// ---------------------------------------------------------------------------
// Stage capture (per-request latency attribution)
// ---------------------------------------------------------------------------

TEST_F(TraceTest, StageCaptureAccumulatesReports) {
  StageCapture capture;
  StageCapture::Report(Stage::kFeaturize, 0.25);
  StageCapture::Report(Stage::kFeaturize, 0.25);
  StageCapture::Report(Stage::kPredict, 1.0);
  EXPECT_DOUBLE_EQ(capture.seconds(Stage::kFeaturize), 0.5);
  EXPECT_DOUBLE_EQ(capture.seconds(Stage::kPredict), 1.0);
}

TEST_F(TraceTest, StageCaptureInnermostWinsAndUnwinds) {
  StageCapture outer;
  {
    StageCapture inner;
    StageCapture::Report(Stage::kPredict, 2.0);
    EXPECT_DOUBLE_EQ(inner.seconds(Stage::kPredict), 2.0);
  }
  EXPECT_DOUBLE_EQ(outer.seconds(Stage::kPredict), 0.0);
  StageCapture::Report(Stage::kPredict, 3.0);  // lands on outer again
  EXPECT_DOUBLE_EQ(outer.seconds(Stage::kPredict), 3.0);
}

TEST_F(TraceTest, StageCaptureReportWithoutCaptureIsANoOp) {
  StageCapture::Report(Stage::kFeaturize, 1.0);  // must not crash
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

TEST_F(TraceTest, WriteTraceEventJsonEmitsPerfettoLoadableStructure) {
  {
    TraceSpan root("serve.request");
    TraceSpan batch("serve.batch");
    batch.AddLink(root.context().trace_id + 1000);  // dangling link: no flow
    batch.SetRoute(0x1234u);
  }
  const std::string path =
      ::testing::TempDir() + "/trace_events_test.json";
  ASSERT_TRUE(WriteTraceEventJson(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string json = contents.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("route 0x0000000000001234"), std::string::npos);
  // The dangling link resolves to no root span, so no flow events.
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
}

TEST_F(TraceTest, WriteTraceEventJsonEmitsFlowEventsForResolvableLinks) {
  const uint64_t linked = RecordRequestTrace(/*error=*/false);
  {
    TraceSpan batch("serve.batch");
    batch.AddLink(linked);
  }
  const std::string path = ::testing::TempDir() + "/trace_flow_test.json";
  ASSERT_TRUE(WriteTraceEventJson(path));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string json = contents.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST_F(TraceTest, ToJsonContainsSpansAndStats) {
  TraceBuffer::Global().ResetWithCapacity(2);
  RunNestedWorkload();  // 4 spans into capacity 2
  const std::string json = TraceBuffer::Global().ToJson();
  EXPECT_NE(json.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":4"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  // The newest two spans survive: sibling and outer.
  EXPECT_NE(json.find("\"name\":\"estimate.predict\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"estimate.batch\""), std::string::npos);
  EXPECT_EQ(json.find("featurize.partition"), std::string::npos);
  TraceBuffer::Global().ResetWithCapacity(4096);
}

}  // namespace
}  // namespace qfcard::obs
