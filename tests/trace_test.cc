// Tests for the obs stage-tracing layer (docs/observability.md): RAII span
// nesting and the per-thread parent chain, ring-buffer overflow keeping the
// newest spans, id stability across Reset + identical reruns (the property
// that makes "span 17" meaningful in a reproducer), End() idempotence, and
// gating when tracing is off.

#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace qfcard::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(true);
    TraceBuffer::Global().Reset();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    TraceBuffer::Global().Reset();
  }
};

// Runs a fixed two-level workload; returns nothing — the buffer holds the
// result. Spans record at End (innermost first).
void RunNestedWorkload() {
  TraceSpan outer("estimate.batch");
  {
    TraceSpan inner("featurize.batch");
    TraceSpan innermost("featurize.partition");
  }
  TraceSpan sibling("estimate.predict");
}

TEST_F(TraceTest, NestedSpansLinkParentIds) {
  RunNestedWorkload();
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: innermost, inner, sibling, outer.
  const SpanRecord& innermost = spans[0];
  const SpanRecord& inner = spans[1];
  const SpanRecord& sibling = spans[2];
  const SpanRecord& outer = spans[3];
  EXPECT_EQ(innermost.name, "featurize.partition");
  EXPECT_EQ(inner.name, "featurize.batch");
  EXPECT_EQ(sibling.name, "estimate.predict");
  EXPECT_EQ(outer.name, "estimate.batch");
  EXPECT_EQ(outer.parent_id, 0u);  // root
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(innermost.parent_id, inner.id);
  // The sibling opened after `inner` closed, so it parents under outer
  // again — the chain pops correctly.
  EXPECT_EQ(sibling.parent_id, outer.id);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.start_s, 0.0);
    EXPECT_GE(s.duration_s, 0.0);
  }
  // Nested spans start no earlier than their parent.
  EXPECT_GE(inner.start_s, outer.start_s);
  EXPECT_GE(innermost.start_s, inner.start_s);
}

TEST_F(TraceTest, IdsAreStableAcrossResetAndIdenticalRerun) {
  RunNestedWorkload();
  const std::vector<SpanRecord> first = TraceBuffer::Global().Snapshot();
  TraceBuffer::Global().Reset();
  RunNestedWorkload();
  const std::vector<SpanRecord> second = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].parent_id, second[i].parent_id);
    EXPECT_EQ(first[i].name, second[i].name);
  }
  // The sequence restarts at 1: the outermost span (opened first, closed
  // last) carries id 1 in both runs.
  EXPECT_EQ(first.back().id, 1u);
}

TEST_F(TraceTest, OverflowKeepsTheNewestSpans) {
  TraceBuffer::Global().ResetWithCapacity(4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(i % 2 == 0 ? "even" : "odd");
  }
  TraceBuffer& buffer = TraceBuffer::Global();
  EXPECT_EQ(buffer.Recorded(), 10u);
  EXPECT_EQ(buffer.Dropped(), 6u);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The survivors are the last four spans (ids 7..10), oldest first.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, 7u + i);
  }
  TraceBuffer::Global().ResetWithCapacity(4096);
}

TEST_F(TraceTest, EndIsIdempotentAndEnablesEarlyDump) {
  TraceSpan span("cli.main");
  span.End();
  span.End();  // no double record
  {
    // After End, new spans must be roots again (the chain was popped).
    TraceSpan next("after");
    EXPECT_NE(next.id(), span.id());
  }
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "cli.main");
  EXPECT_EQ(spans[1].name, "after");
  EXPECT_EQ(spans[1].parent_id, 0u);
}  // span's destructor runs here and must not record a third entry

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  SetTraceEnabled(false);
  {
    TraceSpan span("ghost");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(TraceBuffer::Global().Recorded(), 0u);
  EXPECT_TRUE(TraceBuffer::Global().Snapshot().empty());
}

TEST_F(TraceTest, ThreadsHaveIndependentParentChains) {
  TraceSpan main_span("main.root");
  std::thread worker([] {
    // A span on another thread is a root: the parent chain is per-thread,
    // so it must NOT parent under main.root.
    TraceSpan span("worker.root");
  });
  worker.join();
  main_span.End();
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "worker.root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "main.root");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST_F(TraceTest, ToJsonContainsSpansAndStats) {
  TraceBuffer::Global().ResetWithCapacity(2);
  RunNestedWorkload();  // 4 spans into capacity 2
  const std::string json = TraceBuffer::Global().ToJson();
  EXPECT_NE(json.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":4"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  // The newest two spans survive: sibling and outer.
  EXPECT_NE(json.find("\"name\":\"estimate.predict\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"estimate.batch\""), std::string::npos);
  EXPECT_EQ(json.find("featurize.partition"), std::string::npos);
  TraceBuffer::Global().ResetWithCapacity(4096);
}

}  // namespace
}  // namespace qfcard::obs
