#include "workload/forest.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "query/normalize.h"
#include "workload/imdb.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::workload {
namespace {

TEST(ForestTest, ShapeAndDeterminism) {
  ForestOptions opts;
  opts.num_rows = 2000;
  opts.num_attributes = 8;
  const storage::Table t1 = MakeForestTable(opts);
  EXPECT_EQ(t1.num_rows(), 2000);
  EXPECT_EQ(t1.num_columns(), 8);
  EXPECT_EQ(t1.column(0).name(), "A1");
  const storage::Table t2 = MakeForestTable(opts);
  for (int c = 0; c < 8; ++c) {
    for (int64_t r = 0; r < 100; ++r) {
      ASSERT_EQ(t1.column(c).Get(r), t2.column(c).Get(r));
    }
  }
}

TEST(ForestTest, AttributeKindsHaveExpectedDomains) {
  ForestOptions opts;
  opts.num_rows = 5000;
  opts.num_attributes = 8;
  const storage::Table t = MakeForestTable(opts);
  // Kind 0 (A1, A5): wide elevation-like domain.
  EXPECT_GT(t.column(0).GetStats().distinct, 200);
  // Kind 3 (A4, A8): small categorical domain.
  EXPECT_LE(t.column(3).GetStats().distinct, 12);
  // Kind 1 (A2, A6): skewed; mean far below max.
  const storage::ColumnStats& s = t.column(1).GetStats();
  double mean = 0;
  for (const double v : t.column(1).data()) mean += v;
  mean /= static_cast<double>(t.column(1).size());
  EXPECT_LT(mean, (s.min + s.max) / 2.0);
}

TEST(ForestTest, AttributesAreCorrelated) {
  // A1 and A5 share the first latent factor; their correlation should be
  // clearly nonzero (this is what breaks the independence assumption).
  ForestOptions opts;
  opts.num_rows = 8000;
  opts.num_attributes = 8;
  const storage::Table t = MakeForestTable(opts);
  const auto corr = [&](int c1, int c2) {
    double m1 = 0;
    double m2 = 0;
    const int64_t n = t.num_rows();
    for (int64_t r = 0; r < n; ++r) {
      m1 += t.column(c1).Get(r);
      m2 += t.column(c2).Get(r);
    }
    m1 /= static_cast<double>(n);
    m2 /= static_cast<double>(n);
    double cov = 0;
    double v1 = 0;
    double v2 = 0;
    for (int64_t r = 0; r < n; ++r) {
      const double d1 = t.column(c1).Get(r) - m1;
      const double d2 = t.column(c2).Get(r) - m2;
      cov += d1 * d2;
      v1 += d1 * d1;
      v2 += d2 * d2;
    }
    return cov / std::sqrt(v1 * v2);
  };
  EXPECT_GT(std::abs(corr(0, 4)), 0.15);
}

TEST(QueryGenTest, ConjunctiveWorkloadShape) {
  ForestOptions fopts;
  fopts.num_rows = 1000;
  fopts.num_attributes = 6;
  const storage::Table t = MakeForestTable(fopts);
  common::Rng rng(3);
  PredicateGenOptions opts = ConjunctiveWorkloadOptions(4);
  opts.max_not_equals = 3;
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 200, opts, rng);
  EXPECT_EQ(queries.size(), 200u);
  for (const query::Query& q : queries) {
    EXPECT_GE(q.NumAttributes(), 1);
    EXPECT_LE(q.NumAttributes(), 4);
    EXPECT_TRUE(q.IsConjunctive());
    // Range bounds plus up to 3 not-equals per attribute.
    for (const query::CompoundPredicate& cp : q.predicates) {
      EXPECT_GE(cp.disjuncts[0].preds.size(), 2u);
      EXPECT_LE(cp.disjuncts[0].preds.size(), 5u);
    }
  }
}

TEST(QueryGenTest, MixedWorkloadHasDisjunctions) {
  ForestOptions fopts;
  fopts.num_rows = 1000;
  fopts.num_attributes = 6;
  const storage::Table t = MakeForestTable(fopts);
  common::Rng rng(5);
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 200, MixedWorkloadOptions(4), rng);
  int with_disjunction = 0;
  for (const query::Query& q : queries) {
    for (const query::CompoundPredicate& cp : q.predicates) {
      EXPECT_GE(cp.disjuncts.size(), 1u);
      EXPECT_LE(cp.disjuncts.size(), 3u);
      if (cp.disjuncts.size() > 1) ++with_disjunction;
    }
  }
  EXPECT_GT(with_disjunction, 50);
}

TEST(QueryGenTest, RespectsAllowedAttributes) {
  ForestOptions fopts;
  fopts.num_rows = 500;
  fopts.num_attributes = 6;
  const storage::Table t = MakeForestTable(fopts);
  common::Rng rng(7);
  PredicateGenOptions opts;
  opts.allowed_attrs = {1, 3};
  opts.max_attrs = 6;
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 50, opts, rng);
  for (const query::Query& q : queries) {
    for (const query::CompoundPredicate& cp : q.predicates) {
      EXPECT_TRUE(cp.col.column == 1 || cp.col.column == 3);
    }
  }
}

TEST(QueryGenTest, GeneratedQueriesAreValidAndMostlyNonEmpty) {
  ForestOptions fopts;
  fopts.num_rows = 2000;
  fopts.num_attributes = 8;
  const storage::Table t = MakeForestTable(fopts);
  storage::Catalog cat;
  QFCARD_CHECK_OK(cat.AddTable(MakeForestTable(fopts)));
  common::Rng rng(9);
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 300, ConjunctiveWorkloadOptions(5), rng);
  for (const query::Query& q : queries) {
    ASSERT_TRUE(query::ValidateQuery(q, cat).ok());
  }
  const auto labeled_or = LabelOnTable(t, queries, /*drop_empty=*/true);
  ASSERT_TRUE(labeled_or.ok());
  // Sampling range endpoints from data keeps a good share of results
  // non-empty even on this small 2000-row table (the paper's 580k-row table
  // makes empty intersections much rarer).
  EXPECT_GT(labeled_or.value().size(), 120u);
}

TEST(QueryGenTest, RoundTripsThroughSqlText) {
  ForestOptions fopts;
  fopts.num_rows = 500;
  fopts.num_attributes = 4;
  storage::Catalog cat;
  QFCARD_CHECK_OK(cat.AddTable(MakeForestTable(fopts)));
  const storage::Table& t = *cat.GetTable("forest").value();
  common::Rng rng(11);
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 50, MixedWorkloadOptions(3), rng);
  for (const query::Query& q : queries) {
    const auto sql_or = query::QueryToSql(q, cat);
    ASSERT_TRUE(sql_or.ok()) << sql_or.status();
    const auto reparsed_or = query::ParseQuery(sql_or.value(), cat);
    ASSERT_TRUE(reparsed_or.ok())
        << reparsed_or.status() << "\nSQL: " << sql_or.value();
    // Semantics preserved: equal counts.
    EXPECT_EQ(query::Executor::Count(t, q).value(),
              query::Executor::Count(t, reparsed_or.value()).value())
        << sql_or.value();
  }
}

TEST(QueryGenTest, GroupByAttributesGenerated) {
  ForestOptions fopts;
  fopts.num_rows = 500;
  fopts.num_attributes = 6;
  const storage::Table t = MakeForestTable(fopts);
  common::Rng rng(15);
  PredicateGenOptions opts = ConjunctiveWorkloadOptions(3);
  opts.max_group_by_attrs = 2;
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 100, opts, rng);
  int with_groupby = 0;
  for (const query::Query& q : queries) {
    EXPECT_LE(q.group_by.size(), 2u);
    if (!q.group_by.empty()) ++with_groupby;
  }
  EXPECT_GT(with_groupby, 20);
  // Grouped labels count groups, bounded by qualifying rows.
  const auto labeled_or = LabelOnTable(t, queries, true);
  ASSERT_TRUE(labeled_or.ok());
  for (const LabeledQuery& lq : labeled_or.value()) {
    EXPECT_GE(lq.card, 1.0);
    EXPECT_LE(lq.card, 500.0);
  }
}

TEST(LabelerTest, SaveLoadWorkloadRoundTrip) {
  ForestOptions fopts;
  fopts.num_rows = 800;
  fopts.num_attributes = 5;
  storage::Catalog cat;
  QFCARD_CHECK_OK(cat.AddTable(MakeForestTable(fopts)));
  const storage::Table& t = *cat.GetTable("forest").value();
  common::Rng rng(17);
  const std::vector<query::Query> queries =
      GeneratePredicateWorkload(t, 60, MixedWorkloadOptions(3), rng);
  const std::vector<LabeledQuery> labeled =
      LabelOnTable(t, queries, true).value();
  ASSERT_FALSE(labeled.empty());

  const std::string path = "/tmp/qfcard_workload_test.tsv";
  ASSERT_TRUE(SaveWorkload(labeled, cat, path).ok());
  const auto loaded_or = LoadWorkload(cat, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const std::vector<LabeledQuery>& loaded = loaded_or.value();
  ASSERT_EQ(loaded.size(), labeled.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].card, labeled[i].card);
    // Semantics preserved through the SQL round trip.
    EXPECT_EQ(query::Executor::Count(t, loaded[i].query).value(),
              static_cast<int64_t>(labeled[i].card));
  }
  std::remove(path.c_str());
}

TEST(LabelerTest, LoadWorkloadRejectsMalformed) {
  storage::Catalog cat;
  ForestOptions fopts;
  fopts.num_rows = 10;
  fopts.num_attributes = 2;
  QFCARD_CHECK_OK(cat.AddTable(MakeForestTable(fopts)));
  const std::string path = "/tmp/qfcard_workload_bad.tsv";
  {
    std::ofstream out(path);
    out << "not-a-line-without-tab\n";
  }
  EXPECT_FALSE(LoadWorkload(cat, path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(LoadWorkload(cat, "/nonexistent/x.tsv").status().code(),
            common::StatusCode::kNotFound);
}

TEST(LabelerTest, DropsEmptyResults) {
  ForestOptions fopts;
  fopts.num_rows = 100;
  fopts.num_attributes = 4;
  const storage::Table t = MakeForestTable(fopts);
  query::Query impossible;
  impossible.tables.push_back(query::TableRef{"forest", "forest"});
  query::CompoundPredicate cp;
  cp.col = query::ColumnRef{0, 0};
  query::ConjunctiveClause clause;
  clause.preds.push_back(
      query::SimplePredicate{cp.col, query::CmpOp::kLt, -1e9});
  cp.disjuncts.push_back(clause);
  impossible.predicates.push_back(cp);
  const auto kept_or = LabelOnTable(t, {impossible}, true);
  ASSERT_TRUE(kept_or.ok());
  EXPECT_TRUE(kept_or.value().empty());
  const auto all_or = LabelOnTable(t, {impossible}, false);
  ASSERT_TRUE(all_or.ok());
  EXPECT_EQ(all_or.value().size(), 1u);
}

TEST(LabelerTest, DriftSplitPartitions) {
  std::vector<LabeledQuery> queries(5);
  for (int i = 0; i < 5; ++i) {
    queries[static_cast<size_t>(i)].query.tables.push_back(
        query::TableRef{"t", "t"});
    for (int a = 0; a <= i; ++a) {
      query::CompoundPredicate cp;
      cp.col = query::ColumnRef{0, a};
      query::ConjunctiveClause clause;
      clause.preds.push_back(
          query::SimplePredicate{cp.col, query::CmpOp::kGe, 0});
      cp.disjuncts.push_back(clause);
      queries[static_cast<size_t>(i)].query.predicates.push_back(cp);
    }
  }
  const DriftSplit split = SplitByNumAttributes(std::move(queries), 2);
  EXPECT_EQ(split.low.size(), 2u);   // 1 and 2 attributes
  EXPECT_EQ(split.high.size(), 3u);  // 3, 4, 5 attributes
}

TEST(ImdbTest, SchemaShape) {
  ImdbOptions opts;
  opts.num_titles = 1000;
  const ImdbDatabase db = MakeImdbDatabase(opts);
  EXPECT_EQ(db.catalog.num_tables(), 6);
  EXPECT_EQ(db.graph.edges().size(), 5u);
  const storage::Table& title = *db.catalog.GetTable("title").value();
  EXPECT_EQ(title.num_rows(), 1000);
  const storage::Table& ci = *db.catalog.GetTable("cast_info").value();
  EXPECT_GT(ci.num_rows(), 500);
  // FK values reference existing title ids.
  const storage::ColumnStats& fk =
      ci.column(ci.ColumnIndex("movie_id").value()).GetStats();
  EXPECT_GE(fk.min, 0);
  EXPECT_LT(fk.max, 1000);
}

TEST(ImdbTest, FanoutCorrelatesWithYear) {
  ImdbOptions opts;
  opts.num_titles = 4000;
  const ImdbDatabase db = MakeImdbDatabase(opts);
  const storage::Table& title = *db.catalog.GetTable("title").value();
  const storage::Table& ci = *db.catalog.GetTable("cast_info").value();
  std::vector<int> fanout(4000, 0);
  const int movie_col = ci.ColumnIndex("movie_id").value();
  for (int64_t r = 0; r < ci.num_rows(); ++r) {
    ++fanout[static_cast<size_t>(ci.column(movie_col).Get(r))];
  }
  const int year_col = title.ColumnIndex("production_year").value();
  double recent_fanout = 0;
  int64_t recent = 0;
  double old_fanout = 0;
  int64_t old = 0;
  for (int64_t r = 0; r < 4000; ++r) {
    if (title.column(year_col).Get(r) >= 2000) {
      recent_fanout += fanout[static_cast<size_t>(r)];
      ++recent;
    } else if (title.column(year_col).Get(r) <= 1960) {
      old_fanout += fanout[static_cast<size_t>(r)];
      ++old;
    }
  }
  ASSERT_GT(recent, 0);
  ASSERT_GT(old, 0);
  EXPECT_GT(recent_fanout / recent, 1.3 * (old_fanout / old));
}

TEST(ImdbTest, JobLightWorkloadShape) {
  ImdbOptions opts;
  opts.num_titles = 1500;
  const ImdbDatabase db = MakeImdbDatabase(opts);
  common::Rng rng(13);
  JobLightOptions jopts;
  const std::vector<query::Query> queries =
      MakeJobLightWorkload(db, jopts, rng);
  EXPECT_EQ(queries.size(), 70u);
  std::set<size_t> table_counts;
  for (const query::Query& q : queries) {
    ASSERT_TRUE(query::ValidateQuery(q, db.catalog).ok());
    EXPECT_GE(q.tables.size(), 2u);
    EXPECT_LE(q.tables.size(), 5u);
    EXPECT_EQ(q.tables[0].name, "title");
    EXPECT_EQ(q.joins.size(), q.tables.size() - 1);  // star joins
    EXPECT_GE(q.NumAttributes(), 1);
    EXPECT_LE(q.NumAttributes(), 4);
    EXPECT_TRUE(q.IsConjunctive());
    table_counts.insert(q.tables.size());
    // Labels computable.
    ASSERT_TRUE(query::JoinExecutor::Count(db.catalog, q).ok());
  }
  EXPECT_GE(table_counts.size(), 3u);  // variety of join sizes
}

}  // namespace
}  // namespace qfcard::workload
