#!/usr/bin/env python3
"""Reconstruct per-request critical paths from a qfcard trace dump.

Reads either trace export (docs/observability.md):

  * the span ring JSON written by --trace-out / obs::WriteTraceJson
    ({"spans": [{"id", "parent", "trace", ...}], ...}), or
  * the Chrome trace-event JSON written by --trace-events-out /
    obs::WriteTraceEventJson ({"traceEvents": [...]}), which is also
    structurally validated (every event must be loadable by Perfetto).

For every request trace (a `serve.request` root span) the tool stitches the
cross-thread path — submit on the client thread, queue wait, the worker's
micro-batch (joined by trace id or follow-from link), and the
featurize/predict leaves inside it — then prints a p50/p95/p99 breakdown
per stage and a connectivity summary.

Failure modes (exit 1), for CI:
  --fail-on-orphans    any span whose parent id never closed
  --min-requests N     fewer than N completed (non-rejected) requests
  --require-connected  a completed request whose root does not reach a
                       micro-batch execution span

Stdlib only, like the other tools/ scripts.
"""

import argparse
import json
import sys

RING_REQUIRED = ("id", "parent", "trace", "name", "start_s", "duration_s")
EVENT_PHASES = {"X", "M", "s", "f"}
METADATA_NAMES = {"process_name", "thread_name"}

# Span names the path reconstruction keys on (src/serve/server.cc,
# src/estimators/ml_estimator.cc).
ROOT = "serve.request"
SUBMIT = "serve.submit"
QUEUE_WAIT = "serve.queue_wait"
BATCH = "serve.batch"
EXEC = "estimate.batch"
FEATURIZE = "estimate.featurize"
PREDICT = "estimate.predict"


class TraceFormatError(Exception):
    pass


def _require(cond, msg):
    if not cond:
        raise TraceFormatError(msg)


def spans_from_ring(doc):
    _require(isinstance(doc.get("spans"), list), "'spans' must be a list")
    for key in ("capacity", "recorded", "dropped"):
        _require(isinstance(doc.get(key), int), f"'{key}' must be an integer")
    spans = []
    for i, s in enumerate(doc["spans"]):
        _require(isinstance(s, dict), f"span[{i}] is not an object")
        for key in RING_REQUIRED:
            _require(key in s, f"span[{i}] lacks '{key}'")
        spans.append({
            "id": s["id"],
            "parent": s["parent"],
            "trace": s["trace"],
            "name": s["name"],
            "start": float(s["start_s"]),
            "dur": float(s["duration_s"]),
            "error": bool(s.get("error", False)),
            "links": list(s.get("links", [])),
            "route": s.get("route", 0),
        })
    return spans


def spans_from_trace_events(doc):
    events = doc.get("traceEvents")
    _require(isinstance(events, list), "'traceEvents' must be a list")
    spans = []
    for i, ev in enumerate(events):
        _require(isinstance(ev, dict), f"event[{i}] is not an object")
        ph = ev.get("ph")
        _require(ph in EVENT_PHASES, f"event[{i}] has unknown ph {ph!r}")
        _require(isinstance(ev.get("name"), str), f"event[{i}] lacks a name")
        _require(isinstance(ev.get("pid"), int), f"event[{i}] lacks int pid")
        _require(isinstance(ev.get("tid"), int), f"event[{i}] lacks int tid")
        if ph == "M":
            _require(ev["name"] in METADATA_NAMES,
                     f"event[{i}] metadata name {ev['name']!r} unknown")
            _require(isinstance(ev.get("args", {}).get("name"), str),
                     f"event[{i}] metadata lacks args.name")
            continue
        _require(isinstance(ev.get("ts"), (int, float)),
                 f"event[{i}] lacks numeric ts")
        if ph in ("s", "f"):
            _require("id" in ev, f"event[{i}] flow lacks id")
            continue
        dur = ev.get("dur")
        _require(isinstance(dur, (int, float)) and dur >= 0,
                 f"event[{i}] lacks nonnegative dur")
        args = ev.get("args")
        _require(isinstance(args, dict), f"event[{i}] lacks args")
        for key in ("span", "parent", "trace"):
            _require(isinstance(args.get(key), int),
                     f"event[{i}] args lacks int '{key}'")
        spans.append({
            "id": args["span"],
            "parent": args["parent"],
            "trace": args["trace"],
            "name": ev["name"],
            "start": float(ev["ts"]) / 1e6,
            "dur": float(dur) / 1e6,
            "error": bool(args.get("error", False)),
            "links": list(args.get("links", [])),
            "route": ev["pid"],
        })
    return spans


def load_spans(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    _require(isinstance(doc, dict), "top level must be an object")
    if "traceEvents" in doc:
        return spans_from_trace_events(doc), "trace-events"
    return spans_from_ring(doc), "ring"


def percentile(sorted_values, q):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil
    return sorted_values[int(rank) - 1]


class Analysis:
    def __init__(self, spans):
        self.spans = spans
        self.by_id = {s["id"]: s for s in spans}
        self.children = {}
        for s in spans:
            self.children.setdefault(s["parent"], []).append(s)
        # A micro-batch serves its first member's trace directly and every
        # other member via a follow-from link; either way the batch span is
        # the request's execution edge.
        self.batch_by_trace = {}
        for s in spans:
            if s["name"] != BATCH:
                continue
            self.batch_by_trace.setdefault(s["trace"], s)
            for link in s["links"]:
                self.batch_by_trace.setdefault(link, s)
        self.orphans = [
            s for s in spans
            if s["parent"] != 0 and s["parent"] not in self.by_id
        ]
        self.roots = [
            s for s in spans if s["name"] == ROOT and s["id"] == s["trace"]
        ]

    def subtree(self, span):
        out, frontier = [], [span]
        while frontier:
            cur = frontier.pop()
            out.append(cur)
            frontier.extend(self.children.get(cur["id"], []))
        return out

    def request_paths(self):
        """One stage dict per completed request root."""
        paths = []
        for root in self.roots:
            if root["error"]:
                continue  # rejected before execution; no path to walk
            kids = self.children.get(root["id"], [])
            queue_wait = [s for s in kids if s["name"] == QUEUE_WAIT]
            batch = self.batch_by_trace.get(root["id"])
            stages = {
                "queue_wait": sum(s["dur"] for s in queue_wait),
                "batch_exec": batch["dur"] if batch else 0.0,
                "featurize": 0.0,
                "predict": 0.0,
                "total": root["dur"],
            }
            connected = False
            if batch is not None:
                tree = self.subtree(batch)
                connected = any(s["name"] == EXEC for s in tree)
                stages["featurize"] = sum(
                    s["dur"] for s in tree if s["name"] == FEATURIZE)
                stages["predict"] = sum(
                    s["dur"] for s in tree if s["name"] == PREDICT)
            paths.append({"root": root, "stages": stages,
                          "connected": connected})
        return paths


STAGE_ORDER = ("queue_wait", "batch_exec", "featurize", "predict", "total")


def print_stage_table(paths, out=None):
    out = out if out is not None else sys.stdout
    print(f"{'stage':<12}{'p50 ms':>12}{'p95 ms':>12}{'p99 ms':>12}"
          f"{'mean ms':>12}{'count':>8}", file=out)
    for stage in STAGE_ORDER:
        values = sorted(p["stages"][stage] for p in paths)
        mean = sum(values) / len(values) if values else 0.0
        print(f"{stage:<12}"
              f"{percentile(values, 50) * 1e3:>12.3f}"
              f"{percentile(values, 95) * 1e3:>12.3f}"
              f"{percentile(values, 99) * 1e3:>12.3f}"
              f"{mean * 1e3:>12.3f}"
              f"{len(values):>8}", file=out)


def analyze_file(path, args):
    """Returns a list of failure strings (empty = pass)."""
    try:
        spans, fmt = load_spans(path)
    except (OSError, json.JSONDecodeError, TraceFormatError) as e:
        return [f"{path}: unreadable trace: {e}"]
    analysis = Analysis(spans)
    paths = analysis.request_paths()
    rejected = sum(1 for r in analysis.roots if r["error"])
    connected = sum(1 for p in paths if p["connected"])
    print(f"== {path} ({fmt}) ==")
    print(f"spans: {len(spans)}  traces: "
          f"{len({s['trace'] for s in spans if s['trace']})}  "
          f"requests: {len(paths)} completed / {rejected} rejected  "
          f"connected: {connected}/{len(paths)}  "
          f"orphans: {len(analysis.orphans)}")
    if paths:
        print_stage_table(paths)

    failures = []
    if args.fail_on_orphans and analysis.orphans:
        for s in analysis.orphans[:10]:
            failures.append(
                f"{path}: orphaned span id={s['id']} name={s['name']!r} "
                f"(parent {s['parent']} never closed)")
        if len(analysis.orphans) > 10:
            failures.append(
                f"{path}: ... {len(analysis.orphans) - 10} more orphans")
    if len(paths) < args.min_requests:
        failures.append(
            f"{path}: {len(paths)} completed requests, "
            f"expected >= {args.min_requests}")
    if args.require_connected:
        broken = [p for p in paths if not p["connected"]]
        for p in broken[:10]:
            failures.append(
                f"{path}: request trace {p['root']['id']} never reached a "
                f"micro-batch execution span across the thread boundary")
        if len(broken) > 10:
            failures.append(f"{path}: ... {len(broken) - 10} more "
                            "disconnected requests")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+",
                        help="trace dump(s): ring JSON and/or trace-event JSON")
    parser.add_argument("--fail-on-orphans", action="store_true",
                        help="exit 1 if any span's parent never closed")
    parser.add_argument("--min-requests", type=int, default=0, metavar="N",
                        help="exit 1 with fewer than N completed requests")
    parser.add_argument("--require-connected", action="store_true",
                        help="exit 1 if a completed request's root does not "
                             "reach a micro-batch execution span")
    args = parser.parse_args(argv)

    failures = []
    for path in args.traces:
        failures.extend(analyze_file(path, args))
    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("trace analysis OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
