#!/usr/bin/env python3
"""qfcard whole-project architecture analyzer (docs/static_analysis.md).

Where tools/qfcard_lint.py checks single-file source patterns, this tool
checks the cross-file contracts the serving stack depends on: the layer DAG,
the lock-acquisition order, the no-exceptions error policy, and the
telemetry catalog. Four passes over src/:

layer            The `#include` graph over src/ must be acyclic and respect
                 the layer order declared in tools/layers.json (common ->
                 obs -> storage -> query -> featurize -> ml -> optimizer ->
                 estimators -> workload -> eval/testing -> serve -> api).
                 Rules: `layer` (upward edge / unmapped file) and
                 `include-cycle`.
guarded-by       Every class that owns a common::Mutex must annotate its
                 mutable data members with QFCARD_GUARDED_BY /
                 QFCARD_PT_GUARDED_BY (atomics, consts, mutexes, and
                 condvars are exempt). Catches members added after the
                 Clang thread-safety retrofit that silently escape the
                 analysis.
lock-order       Nested MutexLock scopes and QFCARD_REQUIRES annotations are
                 extracted into a static lock-acquisition graph ("A held
                 while B acquired" edges, plus depth-1 edges through calls
                 to functions known to acquire). The graph must be acyclic —
                 a cycle is a potential deadlock (e.g. router lock vs. a
                 route's swap mutex) that TSan only sees if a schedule
                 happens to hit it. Rule: `lock-order`.
error-policy     Library code must not throw, abort, or exit — fallible
                 operations return common::Status (common/status.cc's
                 CheckOk is the one sanctioned abort path, allowlisted in
                 layers.json). common::Status/StatusOr must stay
                 [[nodiscard]], and a statement that calls a
                 Status-returning function and drops the result is flagged
                 (rule `discarded-status`) even where no compiler runs.
telemetry        Every metric / trace-span name registered in src/
                 (CounterNamed, GaugeNamed, HistogramNamed,
                 IncrementCounter, ObserveLatency, ScopedTimer, TraceSpan)
                 must appear in the catalog section of
                 tools/metrics_schema.json, every catalog entry must have a
                 registration site, and every series the schema requires
                 must be in the catalog — so code and CI profiles cannot
                 drift apart. Rule: `telemetry`.

Suppressions use the same contract as tools/qfcard_lint.py — on the
offending line or the contiguous //-comment block directly above:

    // qfcard-lint: ok(<rule>): <why this is safe>

A suppression without a reason is itself an error. On a `lock-order`
suppression the edges extracted from that line are dropped (recorded in the
JSON report as suppressed) instead of silencing the whole-graph cycle check.

Usage:
    qfcard_analyze.py [--root DIR] [--json PATH] [--check-schema]

--check-schema runs only the telemetry pass (wired into the CI telemetry
schema-check steps so a dead metrics_schema.json entry fails the build);
--json writes the full findings + include-graph + lock-graph report
artifact. Exit status: 0 clean, 1 with one "file:line: [rule] message" per
finding otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Optional

SUPPRESS_RE = re.compile(r"//\s*qfcard-lint:\s*ok\((?P<rule>[\w-]+)\)(?P<reason>.*)")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"(?P<path>[^"]+)"')

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "switch", "do", "catch", "return",
    "sizeof", "alignof", "decltype", "new", "delete", "throw", "case",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "static_assert", "defined", "noexcept", "alignas", "operator",
}


# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------

def scrub(text: str) -> tuple[str, str]:
    """Returns (no_comments, no_comments_no_strings): the source with comment
    bodies — and, in the second form, string/char literal bodies — replaced
    by spaces. Offsets and newlines are preserved, so line numbers computed
    on the scrubbed text match the original."""
    nc = list(text)       # comments blanked
    ncs = list(text)      # comments + string/char contents blanked
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                nc[j] = ncs[j] = " "
                j += 1
            i = j
        elif c == "/" and nxt == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    nc[j] = ncs[j] = " "
                j += 1
            if j < n - 1:
                nc[j] = ncs[j] = " "
                nc[j + 1] = ncs[j + 1] = " "
                j += 2
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    if text[j] != "\n":
                        ncs[j] = " "
                    j += 1
                if j < n and text[j] != "\n":
                    ncs[j] = " "
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(nc), "".join(ncs)


class Source:
    """One src/ file with raw and scrubbed views."""

    def __init__(self, path: pathlib.Path, rel: str) -> None:
        self.path = path
        self.rel = rel  # relative to src/, e.g. "common/mutex.h"
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.code, self.code_nostr = scrub(self.text)
        self.code_lines = self.code.splitlines()
        self.nostr_lines = self.code_nostr.splitlines()
        # line offsets for offset -> line translation
        self._starts = [0]
        for line in self.text.splitlines(keepends=True):
            self._starts.append(self._starts[-1] + len(line))

    def line_of(self, offset: int) -> int:
        """1-based line number containing byte offset."""
        lo, hi = 0, len(self._starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def suppressions(self, idx: int) -> dict[str, str]:
        """Suppression rules active for 0-based line `idx` (same contract as
        tools/qfcard_lint.py): the line itself or the contiguous //-comment
        block directly above."""
        out: dict[str, str] = {}

        def collect(probe: int) -> None:
            if 0 <= probe < len(self.lines):
                m = SUPPRESS_RE.search(self.lines[probe])
                if m:
                    out[m.group("rule")] = m.group("reason").strip(" :")

        collect(idx)
        probe = idx - 1
        while probe >= 0 and self.lines[probe].lstrip().startswith("//"):
            collect(probe)
            probe -= 1
        return out


class Analyzer:
    def __init__(self, root: pathlib.Path) -> None:
        self.root = root
        self.src = root / "src"
        self.layers_path = root / "tools" / "layers.json"
        self.schema_path = root / "tools" / "metrics_schema.json"
        self.config = json.loads(self.layers_path.read_text("utf-8"))
        self.findings: list[tuple[str, int, str, str]] = []
        self.sources: list[Source] = []
        for p in sorted(self.src.rglob("*.h")) + sorted(self.src.rglob("*.cc")):
            self.sources.append(Source(p, p.relative_to(self.src).as_posix()))
        self.by_rel = {s.rel: s for s in self.sources}
        self.entry_points = set(self.config.get("entry_points", []))
        # JSON report artifacts filled by the passes.
        self.report_extra: dict = {}

    # -- shared finding plumbing --------------------------------------------

    def report(self, src: Source, idx: int, rule: str, msg: str) -> bool:
        """Records a finding at 0-based line `idx` unless suppressed with a
        reason. Returns True when the finding was suppressed."""
        sup = src.suppressions(idx)
        if rule in sup:
            if not sup[rule]:
                self.findings.append(
                    (src.rel, idx + 1, rule,
                     "suppression has no reason; write "
                     f"'// qfcard-lint: ok({rule}): <why>'"))
            return True
        self.findings.append((src.rel, idx + 1, rule, msg))
        return False

    def suppressed(self, src: Source, idx: int, rule: str) -> bool:
        """True when `rule` is suppressed (with a reason) at 0-based `idx`;
        a reason-less suppression is reported and does not suppress."""
        sup = src.suppressions(idx)
        if rule not in sup:
            return False
        if not sup[rule]:
            self.findings.append(
                (src.rel, idx + 1, rule,
                 "suppression has no reason; write "
                 f"'// qfcard-lint: ok({rule}): <why>'"))
            return False
        return True

    # -- pass 1: layering ---------------------------------------------------

    def layer_index(self, rel: str) -> Optional[int]:
        for i, layer in enumerate(self.config["layers"]):
            if rel in layer.get("files", []):
                return i
            top = rel.split("/", 1)[0]
            if "/" in rel and top in layer.get("dirs", []):
                return i
        return None

    def layer_name(self, index: int) -> str:
        return self.config["layers"][index]["name"]

    def pass_layering(self) -> None:
        graph: dict[str, list[str]] = {s.rel: [] for s in self.sources}
        edge_count = 0
        for src in self.sources:
            my_layer = self.layer_index(src.rel)
            if my_layer is None:
                self.report(src, 0, "layer",
                            f"file '{src.rel}' is not mapped to any layer in "
                            "tools/layers.json; add its directory to a layer")
                continue
            for idx, line in enumerate(src.code_lines):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group("path")
                if target not in self.by_rel:
                    continue  # system or non-src header
                graph[src.rel].append(target)
                edge_count += 1
                if src.rel in self.entry_points:
                    continue  # program mains compose layers by design
                target_layer = self.layer_index(target)
                if target_layer is None:
                    continue  # reported once at the target file itself
                if target_layer > my_layer:
                    self.report(
                        src, idx, "layer",
                        f"upward include: '{src.rel}' "
                        f"(layer {self.layer_name(my_layer)}) includes "
                        f"'{target}' (layer {self.layer_name(target_layer)}); "
                        "the layer order in tools/layers.json only allows "
                        "includes of the same or lower layers")

        # Cycle detection over the file-level include graph.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {rel: WHITE for rel in graph}
        cycles: list[list[str]] = []

        def dfs(start: str) -> None:
            stack: list[tuple[str, int]] = [(start, 0)]
            path: list[str] = []
            while stack:
                node, child = stack.pop()
                if child == 0:
                    color[node] = GRAY
                    path.append(node)
                edges = graph[node]
                advanced = False
                for k in range(child, len(edges)):
                    nxt = edges[k]
                    if color[nxt] == GRAY:
                        cyc = path[path.index(nxt):] + [nxt]
                        cycles.append(cyc)
                    elif color[nxt] == WHITE:
                        stack.append((node, k + 1))
                        stack.append((nxt, 0))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    path.pop()

        for rel in sorted(graph):
            if color[rel] == WHITE:
                dfs(rel)
        for cyc in cycles:
            src = self.by_rel[cyc[0]]
            self.report(src, 0, "include-cycle",
                        "include cycle: " + " -> ".join(cyc))
        self.report_extra["include_graph"] = {
            "files": len(graph),
            "edges": edge_count,
            "cycles": [" -> ".join(c) for c in cycles],
            "layers": [l["name"] for l in self.config["layers"]],
        }

    # -- pass 2: mutex coverage + lock order --------------------------------

    CLASS_HEAD_RE = re.compile(
        r"\b(class|struct)\s+(?:QFCARD_\w+\s*(?:\([^()]*\))?\s+)*"
        r"(?:alignas\s*\([^()]*\)\s+)*(?P<name>\w+)")
    MUTEX_MEMBER_RE = re.compile(
        r"\b(?:common::)?Mutex\s+(?P<name>\w+)\s*[;={]")
    ACQUIRE_RE = re.compile(
        r"\b(?:common::)?MutexLock\s+\w+\s*\(\s*&\s*(?P<mu>[\w.>-]+)\s*\)")
    REQUIRES_RE = re.compile(r"QFCARD_REQUIRES\s*\(\s*(?P<mus>[^()]*)\)")
    FUNC_NAME_RE = re.compile(r"(?P<name>[A-Za-z_~]\w*(?:::[A-Za-z_~]\w*)*)\s*\($")
    CALL_RE = re.compile(
        r"(?<![:.\w>])(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")
    MEMBER_CALL_RE = re.compile(
        r"(?:\.|->)(?P<name>[A-Za-z_]\w*)\s*\(")

    def _walk_contexts(self, src: Source):
        """Yields (event, data) over the brace structure of `src` using the
        string-blanked scrubbed text. Events:
          ('open', kind, name, depth, offset)   entering a {...} block
          ('close', kind, name, depth, offset)  leaving it
          ('stmt', text, depth, offset)         a ';'-terminated statement,
                                                with enclosing context stack
        kind is 'class' | 'func' | 'other'; the context stack is available to
        the caller via the generator's shared list (returned separately)."""
        text = src.code_nostr
        depth = 0
        stack: list[tuple[str, str, int]] = []  # (kind, name, open depth)
        stmt_start = 0
        last_boundary = 0  # start of the current "header" text
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            if c == "{":
                header = text[last_boundary:i]
                kind, name = self._classify_header(header)
                stack.append((kind, name, depth))
                yield ("open", kind, name, depth, i, stack, header)
                depth += 1
                last_boundary = i + 1
                stmt_start = i + 1
            elif c == "}":
                depth -= 1
                if stack and stack[-1][2] == depth:
                    kind, name, _ = stack.pop()
                    yield ("close", kind, name, depth, i, stack, "")
                last_boundary = i + 1
                stmt_start = i + 1
            elif c == ";":
                stmt = text[stmt_start:i + 1]
                yield ("stmt", stmt, "", depth, stmt_start, stack, "")
                stmt_start = i + 1
                last_boundary = i + 1
            i += 1

    def _classify_header(self, header: str) -> tuple[str, str]:
        h = header.strip()
        first = re.match(r"[A-Za-z_]\w*", h)
        if first and first.group(0) in (
                "if", "else", "for", "while", "switch", "do", "try",
                "catch", "return", "case", "default"):
            return ("other", "")
        m = self.CLASS_HEAD_RE.search(h)
        if m and "enum" not in h.split():
            # "class X : public Y" headers; forward declarations end in ';'
            # and never reach header classification.
            return ("class", m.group("name"))
        if h.startswith("namespace") or h.startswith("extern"):
            return ("other", "")
        # Function definition: first "name(" whose name is not a control
        # keyword, a macro, or a member call (lambda bodies passed as call
        # arguments classify as 'other' so their acquisitions attribute to
        # the enclosing named function).
        for fm in re.finditer(r"([A-Za-z_~][\w:~]*)\s*\(", h):
            if fm.start() > 0 and h[fm.start() - 1] in ".>":
                continue
            name = fm.group(1)
            simple = name.rsplit("::", 1)[-1].lstrip("~")
            if simple in CONTROL_KEYWORDS or simple.isupper() or not simple:
                continue
            return ("func", name)
        return ("other", "")

    def _enclosing_class(self, stack) -> str:
        for kind, name, _ in reversed(stack):
            if kind == "class":
                return name
        return ""

    def _enclosing_func(self, stack) -> str:
        for kind, name, _ in reversed(stack):
            if kind == "func":
                return name
        return ""

    MANUAL_LOCK_RE = re.compile(
        r"(?P<mu>[A-Za-z_]\w*(?:(?:\.|->)\w+)*)\s*(?:\.|->)\s*"
        r"(?P<op>Lock|lock|Unlock|unlock)\s*\(\s*\)")

    def pass_mutexes(self) -> None:
        # ---- single sweep: per-class member inventory, per-function lock
        # acquisition map, acquisition sites, and call sites with the locks
        # lexically held at each ------------------------------------------
        class_members: dict[str, list] = {}
        class_mutexes: dict[str, list[str]] = {}
        fn_acquires: dict[str, dict] = {}  # key -> {"mutexes": set}

        def mutex_id(name: str, cls: str, src: Source) -> str:
            name = name.replace("this->", "")
            simple = name.rsplit("->", 1)[-1].rsplit(".", 1)[-1]
            if cls and re.fullmatch(r"\w+_", simple):
                return f"{cls}::{simple}"
            return f"{src.rel.rsplit('/', 1)[-1]}::{simple}"

        def func_key(name: str, stack, src: Source) -> str:
            if "::" in name:
                return name
            cls = self._enclosing_class(stack)
            if cls:
                return f"{cls}::{name}"
            return f"{src.rel}::{name}"

        acquisitions: list[dict] = []  # MutexLock / .Lock() sites + context
        call_sites: list[dict] = []    # statements executed with locks held
        edges: dict[tuple[str, str], dict] = {}
        suppressed_edges: list[dict] = []

        for src in self.sources:
            held: list[tuple[int, str]] = []  # (scope depth, mutex id)
            fn_stack_keys: list[str] = []
            for ev in self._walk_contexts(src):
                event, a, b, depth, offset, stack = ev[0], ev[1], ev[2], ev[3], ev[4], ev[5]
                if event == "open" and a == "class":
                    class_members.setdefault(b, [])
                    class_mutexes.setdefault(b, [])
                elif event == "open" and a == "func":
                    header = ev[6]
                    key = func_key(b, stack[:-1], src)
                    fn_stack_keys.append(key)
                    fn_acquires.setdefault(key, {"mutexes": set()})
                    # QFCARD_REQUIRES(mu) in the signature: held at entry,
                    # but not an acquisition (the caller already holds it).
                    cls = b.rsplit("::", 1)[0] if "::" in b else \
                        self._enclosing_class(stack[:-1])
                    for m in self.REQUIRES_RE.finditer(header):
                        for mu in m.group("mus").split(","):
                            mu = mu.strip().lstrip("&!")
                            if mu and re.fullmatch(r"[\w.>-]+", mu):
                                held.append((depth + 1,
                                             mutex_id(mu, cls, src)))
                elif event == "close":
                    if a == "func" and fn_stack_keys:
                        fn_stack_keys.pop()
                    # Drop locks whose scope just ended (acquired at depth+1
                    # inside the block that closed back to `depth`).
                    held = [(d, mu) for d, mu in held if d <= depth]
                elif event == "stmt":
                    stmt = a
                    idx = src.line_of(offset + max(
                        len(stmt) - len(stmt.lstrip()), 0)) - 1
                    in_class = stack and stack[-1][0] == "class"
                    if in_class:
                        class_members[stack[-1][1]].append(
                            (src, idx, stmt, offset))
                        mm = self.MUTEX_MEMBER_RE.search(stmt)
                        if mm:
                            class_mutexes[stack[-1][1]].append(
                                mm.group("name"))
                        continue
                    fn_key = fn_stack_keys[-1] if fn_stack_keys else ""
                    cls = fn_key.rsplit("::", 1)[0] if "::" in fn_key else ""
                    acq = self.ACQUIRE_RE.search(stmt)
                    if acq and fn_key:
                        aidx = src.line_of(offset + acq.start()) - 1
                        mu = mutex_id(acq.group("mu"), cls, src)
                        fn_acquires[fn_key]["mutexes"].add(mu)
                        acquisitions.append(
                            {"src": src, "idx": aidx, "mu": mu,
                             "held": [h for _, h in held if h != mu]})
                        held.append((depth, mu))
                        continue
                    man = self.MANUAL_LOCK_RE.search(stmt)
                    if man and fn_key:
                        mu = mutex_id(man.group("mu"), cls, src)
                        if man.group("op") in ("Lock", "lock"):
                            fn_acquires[fn_key]["mutexes"].add(mu)
                            aidx = src.line_of(offset + man.start()) - 1
                            acquisitions.append(
                                {"src": src, "idx": aidx, "mu": mu,
                                 "held": [h for _, h in held if h != mu]})
                            held.append((depth, mu))
                        else:  # Unlock: release the most recent hold
                            for k in range(len(held) - 1, -1, -1):
                                if held[k][1] == mu:
                                    del held[k]
                                    break
                        continue
                    if held and fn_key:
                        call_sites.append(
                            {"src": src, "idx": idx, "stmt": stmt,
                             "fn": fn_key,
                             "held": [h for _, h in held]})
        self._class_mutexes = class_mutexes

        # ---- guarded-by coverage -----------------------------------------
        for cls, mutexes in sorted(class_mutexes.items()):
            if not mutexes:
                continue
            for src, idx, stmt, offset in class_members[cls]:
                self._check_member(src, idx, stmt, offset, cls, mutexes)

        # ---- lock-order edges --------------------------------------------
        # Direct (lexical nesting / REQUIRES) edges.
        for site in acquisitions:
            for h in site["held"]:
                self._add_edge(edges, suppressed_edges, h, site["mu"],
                               site["src"], site["idx"], "nested MutexLock")
        # Depth-1 interprocedural edges: calls made while a lock is held to
        # functions known to acquire. Simple (unqualified) callee names are
        # resolved only when exactly one acquiring function bears the name.
        simple_map: dict[str, list[str]] = {}
        for key, info in fn_acquires.items():
            if info["mutexes"]:
                simple_map.setdefault(key.rsplit("::", 1)[-1], []).append(key)
        for site in call_sites:
            callees: set[str] = set()
            for m in self.CALL_RE.finditer(site["stmt"]):
                name = m.group("name")
                if "::" in name:
                    if name in fn_acquires and fn_acquires[name]["mutexes"]:
                        callees.add(name)
                    continue
                if name in CONTROL_KEYWORDS or name.isupper():
                    continue
                targets = simple_map.get(name, [])
                if len(targets) == 1:
                    callees.add(targets[0])
            for m in self.MEMBER_CALL_RE.finditer(site["stmt"]):
                targets = simple_map.get(m.group("name"), [])
                if len(targets) == 1:
                    callees.add(targets[0])
            for callee in sorted(callees):
                if callee == site["fn"]:
                    continue
                for mu in sorted(fn_acquires[callee]["mutexes"]):
                    for h in site["held"]:
                        if h != mu:
                            self._add_edge(edges, suppressed_edges, h, mu,
                                           site["src"], site["idx"],
                                           f"call to {callee}")

        # ---- cycle check --------------------------------------------------
        adj: dict[str, set[str]] = {}
        for (a, b) in edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        cycle = self._find_cycle(adj)
        if cycle:
            origin = edges[(cycle[0], cycle[1])]
            self.report(origin["src"], origin["idx"], "lock-order",
                        "lock-acquisition cycle: " + " -> ".join(cycle) +
                        " (potential deadlock; fix the acquisition order or "
                        "restructure so one lock is released first)")
        self.report_extra["lock_graph"] = {
            "nodes": sorted(adj),
            "edges": [
                {"from": a, "to": b, "via": i["via"],
                 "site": f"{i['src'].rel}:{i['idx'] + 1}"}
                for (a, b), i in sorted(edges.items())],
            "suppressed_edges": suppressed_edges,
            "cycle": cycle or [],
        }

    def _add_edge(self, edges, suppressed_edges, frm: str, to: str,
                  src: Source, idx: int, via: str) -> None:
        if frm == to:
            return
        if self.suppressed(src, idx, "lock-order"):
            suppressed_edges.append(
                {"from": frm, "to": to, "via": via,
                 "site": f"{src.rel}:{idx + 1}"})
            return
        edges.setdefault((frm, to), {"src": src, "idx": idx, "via": via})

    MEMBER_NAME_RE = re.compile(r"([A-Za-z]\w*_)\s*(\[[^\]]*\])?\s*$")
    MEMBER_EXEMPT_RE = re.compile(
        r"\bconst\b|\bstd::atomic\b|\b(?:common::)?Mutex\b"
        r"|\b(?:common::)?CondVar\b|\bstatic\s+constexpr\b|\busing\b"
        r"|\btypedef\b|\bfriend\b")

    def _check_member(self, src: Source, idx: int, stmt: str, offset: int,
                      cls: str, mutexes: list[str]) -> None:
        if "QFCARD_GUARDED_BY" in stmt or "QFCARD_PT_GUARDED_BY" in stmt:
            return
        if self.MEMBER_EXEMPT_RE.search(stmt):
            return
        bare = re.sub(r"QFCARD_\w+\s*\([^()]*\)", "", stmt).rstrip("; \t\n")
        bare = re.sub(r"=[^=]*$", "", bare)
        bare = re.sub(r"\{[^{}]*\}\s*$", "", bare).rstrip()
        m = self.MEMBER_NAME_RE.search(bare)
        if not m:
            return  # not a data member (method decl, nested type, ...)
        # Anchor at the member name's own line: the statement slice can start
        # lines earlier (after an access specifier, which has no terminator),
        # and the suppression contract is same-line-or-block-above the name.
        pos = stmt.find(m.group(1))
        if pos >= 0:
            idx = src.line_of(offset + pos) - 1
        self.report(
            src, idx, "guarded-by",
            f"class '{cls}' owns mutex(es) {', '.join(sorted(set(mutexes)))} "
            f"but member '{m.group(1)}' has no QFCARD_GUARDED_BY / "
            "QFCARD_PT_GUARDED_BY annotation; declare its guard, make it "
            "atomic/const, or suppress with the reason it needs no lock")

    def _find_cycle(self, adj: dict[str, set[str]]) -> list[str]:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in adj}
        for start in sorted(adj):
            if color[start] != WHITE:
                continue
            stack = [(start, iter(sorted(adj[start])))]
            path = [start]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GRAY:
                        return path[path.index(nxt):] + [nxt]
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(sorted(adj[nxt]))))
                        path.append(nxt)
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
                    path.pop()
        return []

    # -- pass 3: error policy -----------------------------------------------

    THROW_RE = re.compile(r"\bthrow\b")
    ABORT_RE = re.compile(
        r"(?<![:\w])(?:std::)?(?:abort|exit|_Exit|quick_exit|terminate)"
        r"\s*\(")

    def pass_error_policy(self) -> None:
        allow = set(self.config.get("error_policy", {}).get("allow", []))
        for src in self.sources:
            if src.rel in allow or src.rel in self.entry_points:
                continue
            for idx, line in enumerate(src.nostr_lines):
                if self.THROW_RE.search(line):
                    self.report(
                        src, idx, "error-policy",
                        "throw in library code; qfcard does not use "
                        "exceptions — return common::Status/StatusOr "
                        "(docs/static_analysis.md)")
                if self.ABORT_RE.search(line):
                    self.report(
                        src, idx, "error-policy",
                        "abort/exit in library code outside the allowlist "
                        "(tools/layers.json error_policy.allow); return "
                        "common::Status, or QFCARD_CHECK_OK for proven "
                        "invariants")

        status_h = self.by_rel.get("common/status.h")
        if status_h is not None:
            nodiscard_classes = re.findall(
                r"class\s+\[\[nodiscard\]\]\s+(\w+)", status_h.text)
            for cls in ("Status", "StatusOr"):
                if cls not in nodiscard_classes:
                    self.report(
                        status_h, 0, "error-policy",
                        f"common::{cls} is not declared "
                        f"'class [[nodiscard]] {cls}'; the compiler can no "
                        "longer flag ignored statuses")

        self._pass_discarded_status()

    DECL_RE = re.compile(
        r"(?P<ret>[A-Za-z_][\w:<>,\s*&]*?)\s+"
        r"(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")
    BARE_CALL_RE = re.compile(
        r"^(?:[A-Za-z_]\w*(?:\.|->|::))*"
        r"(?P<name>[A-Za-z_]\w*)\s*\(.*\)\s*;$")

    def _pass_discarded_status(self) -> None:
        status_only: set[str] = set()
        non_status: set[str] = set()
        for src in self.sources:
            for m in self.DECL_RE.finditer(src.code_nostr):
                ret = " ".join(m.group("ret").split())
                name = m.group("name").rsplit("::", 1)[-1]
                if name in CONTROL_KEYWORDS or not name[0].isupper():
                    continue
                if re.search(r"\bStatus(Or\b|\b)", ret):
                    status_only.add(name)
                else:
                    non_status.add(name)
        flaggable = status_only - non_status
        for src in self.sources:
            if src.rel in self.entry_points:
                continue
            for ev in self._walk_contexts(src):
                if ev[0] != "stmt":
                    continue
                stmt, offset = ev[1], ev[4]
                flat = " ".join(stmt.split())
                m = self.BARE_CALL_RE.match(flat)
                if not m or m.group("name") not in flaggable:
                    continue
                idx = src.line_of(offset + max(
                    len(stmt) - len(stmt.lstrip()), 0)) - 1
                self.report(
                    src, idx, "discarded-status",
                    f"result of Status-returning '{m.group('name')}' is "
                    "discarded; check it, QFCARD_RETURN_IF_ERROR / "
                    "QFCARD_CHECK_OK it, or cast to (void) with a reason")

    # -- pass 4: telemetry contract -----------------------------------------

    METRIC_PATTERNS = [
        ("counters", re.compile(r"\bIncrementCounter\s*\(\s*\"([^\"]+)\"")),
        ("counters", re.compile(r"\bCounterNamed\s*\(\s*\"([^\"]+)\"")),
        ("gauges", re.compile(r"\bGaugeNamed\s*\(\s*\"([^\"]+)\"")),
        ("histograms", re.compile(r"\bHistogramNamed\s*\(\s*\"([^\"]+)\"")),
        ("histograms", re.compile(r"\bObserveLatency\s*\(\s*\"([^\"]+)\"")),
        ("histograms",
         re.compile(r"\bScopedTimer\s+\w+\s*[({]\s*\"([^\"]+)\"")),
        ("spans", re.compile(r"\bTraceSpan\s+\w+\s*[({]\s*\"([^\"]+)\"")),
        ("spans", re.compile(r"\bTraceSpan\s*\(\s*\"([^\"]+)\"")),
        ("spans", re.compile(r"\bRecordSpan\s*\(\s*\"([^\"]+)\"")),
        ("spans", re.compile(r"\bRecordTraceRoot\s*\(\s*\"([^\"]+)\"")),
    ]
    DYNAMIC_PATTERNS = [
        re.compile(r"\b(IncrementCounter|CounterNamed|GaugeNamed"
                   r"|HistogramNamed|ObserveLatency)\s*\((?!\s*[\")])"),
        re.compile(r"\b(ScopedTimer|TraceSpan)\s+\w+\s*\((?!\s*[\")&])"),
        re.compile(r"\b(RecordSpan|RecordTraceRoot)\s*\((?!\s*\")"),
    ]

    def pass_telemetry(self) -> None:
        schema = json.loads(self.schema_path.read_text("utf-8"))
        catalog = schema.get("catalog", {})
        registered: dict[str, dict[str, list[str]]] = {
            "counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
        impl = set(self.config.get("telemetry", {}).get("impl", []))
        for src in self.sources:
            if src.rel in impl:
                continue
            for kind, rx in self.METRIC_PATTERNS:
                for m in rx.finditer(src.code):
                    name = m.group(1)
                    idx = src.line_of(m.start()) - 1
                    registered[kind].setdefault(name, []).append(
                        f"{src.rel}:{idx + 1}")
                    if name not in catalog.get(kind, []):
                        self.report(
                            src, idx, "telemetry",
                            f"{kind[:-1]} '{name}' is registered here but "
                            "missing from the catalog in "
                            "tools/metrics_schema.json; add it so CI "
                            "profiles and dashboards can see it")
            for rx in self.DYNAMIC_PATTERNS:
                for m in rx.finditer(src.code):
                    idx = src.line_of(m.start()) - 1
                    self.report(
                        src, idx, "telemetry",
                        "metric/span name is not a string literal; the "
                        "catalog cross-check cannot see dynamic names — use "
                        "a literal name (labels may stay dynamic) or "
                        "suppress with the reason")
        # Reverse direction: every catalog entry needs a registration site.
        for kind in ("counters", "gauges", "histograms", "spans"):
            for name in catalog.get(kind, []):
                if name not in registered[kind]:
                    self.findings.append(
                        ("tools/metrics_schema.json", 1, "telemetry",
                         f"catalog {kind[:-1]} '{name}' has no registration "
                         "site in src/; delete the dead entry or restore "
                         "the instrumentation"))
        # Consistency: everything the schema *requires* must be catalogued.
        def required_names(section: dict) -> dict[str, set[str]]:
            out = {"counters": set(), "gauges": set(), "histograms": set()}
            out["counters"] |= set(
                section.get("counters", {}).get("required", []))
            out["counters"] |= set(
                section.get("counters", {}).get("nonzero", []))
            out["gauges"] |= set(section.get("gauges", {}).get("required", []))
            for spec in section.get("histograms", {}).get("required", []):
                out["histograms"].add(spec["name"])
            return out

        sections = [schema] + [
            v for k, v in schema.get("profiles", {}).items()
            if k != "_comment"]
        for section in sections:
            for kind, names in required_names(section).items():
                for name in sorted(names):
                    if name not in catalog.get(kind, []):
                        self.findings.append(
                            ("tools/metrics_schema.json", 1, "telemetry",
                             f"required {kind[:-1]} '{name}' is missing from "
                             "the catalog section; required series must be "
                             "catalogued"))
        self.report_extra["telemetry"] = {
            kind: sorted(registered[kind]) for kind in registered}

    # -- driver --------------------------------------------------------------

    def run(self, check_schema_only: bool) -> int:
        if check_schema_only:
            self.pass_telemetry()
        else:
            self.pass_layering()
            self.pass_mutexes()
            self.pass_error_policy()
            self.pass_telemetry()
        self.findings.sort()
        return 1 if self.findings else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the findings + graph report artifact")
    parser.add_argument("--check-schema", action="store_true",
                        help="run only the telemetry catalog cross-check "
                             "(for the CI telemetry schema-check steps)")
    args = parser.parse_args(argv)

    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    analyzer = Analyzer(root)
    status = analyzer.run(check_schema_only=args.check_schema)

    for rel, line, rule, msg in analyzer.findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if args.json:
        report = {
            "version": 1,
            "findings": [
                {"file": rel, "line": line, "rule": rule, "message": msg}
                for rel, line, rule, msg in analyzer.findings],
            **analyzer.report_extra,
        }
        pathlib.Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=False) + "\n", "utf-8")
    if status:
        print(f"qfcard_analyze: {len(analyzer.findings)} finding(s)",
              file=sys.stderr)
    else:
        print(f"qfcard_analyze: OK ({len(analyzer.sources)} files)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
