#!/usr/bin/env python3
"""qfcard determinism lint (docs/static_analysis.md).

Rejects source patterns in src/ that break the replayability contract the
differential/metamorphic fuzzer (docs/testing.md) relies on: a failing seed
must reproduce the same execution bit-for-bit on any machine, at any thread
count, on any standard library.

Rules
-----
banned-random      std::rand / srand / rand() / std::random_device outside
                   src/common/random.*. All randomness must flow through
                   common::Rng so streams are seed-derived and replayable.
wall-clock         system_clock / time(...) / gettimeofday / localtime /
                   gmtime / strftime / CLOCK_REALTIME in library code.
                   Durations use steady_clock; wall-clock reads make runs
                   unreproducible and leak into reports.
unordered-iter     Range-for (or .begin() traversal) over a variable declared
                   in the same file as any std::unordered_* container
                   (map/set/multimap/multiset), directly or through a
                   `using X = std::unordered_...` alias. Hash iteration
                   order is implementation-defined, so feeding it into
                   ordered output silently diverges across stdlibs — the
                   exact bug class behind the GROUP BY hash-collision
                   undercount fixed in src/query/executor.cc (PR 2).
unordered-container  Any std::unordered_* use (including declarations
                   through a local alias) must carry a justification comment
                   explaining why its order cannot reach output (lookup-only,
                   commutative reduction, ...). This makes the safe uses
                   auditable and new unsafe ones a conscious, reviewed act.
raw-steady-clock   steady_clock::now() in src/ outside src/obs/. All timing
                   flows through obs::Now() / obs::ScopedTimer / obs::TraceSpan
                   so there is exactly one clock path and every measurement can
                   land in the telemetry registry (docs/observability.md).
                   Naming the type (steady_clock::time_point members) stays
                   legal — only the clock *read* is restricted.

Suppressions
------------
Append on the offending line, or place on the line directly above:

    // qfcard-lint: ok(<rule>): <why this cannot break determinism>

A suppression without a reason after the colon is itself an error.

Exit status: 0 when clean, 1 with one "file:line: [rule] message" per
finding otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SUPPRESS_RE = re.compile(r"//\s*qfcard-lint:\s*ok\((?P<rule>[\w-]+)\)(?P<reason>.*)")

BANNED_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b|(?<![:\w])rand\s*\(\s*\)"
)
WALL_CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\blocaltime(_r)?\s*\(|\bgmtime(_r)?\s*\("
    r"|\bstrftime\s*\(|\bCLOCK_REALTIME\b|(?<![:\w])time\s*\(\s*(NULL|nullptr|0)?\s*\)"
)
UNORDERED_USE_RE = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\s*<")
# Variable declared as an unordered container: "std::unordered_map<...> name"
# (the template argument list may contain nested <>, so match lazily to the
# last "> name" on the line).
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>"
    r"\s+(?P<name>\w+)\s*[;({=]"
)
# Type alias hiding an unordered container: "using Index = std::unordered_...".
# Variables declared with the alias are unordered too — without this, the
# alias laundered the container past both unordered rules.
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(?P<name>\w+)\s*=\s*"
    r"std::unordered_(?:map|set|multimap|multiset)\s*<"
)
COMMENT_RE = re.compile(r"//.*$")

RAW_STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\s*::\s*now\s*\(")

# Randomness is implemented (seeded, replayable) here; the banned-random rule
# does not apply to the implementation itself.
RANDOM_IMPL = ("common/random.h", "common/random.cc")

# The one legal steady_clock::now() call site: obs::Now() and the rest of the
# telemetry layer built directly on it.
CLOCK_IMPL_PREFIX = "src/obs/"


def strip_comment(line: str) -> str:
    return COMMENT_RE.sub("", line)


def suppressions(lines: list[str], idx: int) -> dict[str, str]:
    """Suppression rules active for line `idx`: on the line itself, or in the
    contiguous //-comment block directly above it."""
    out: dict[str, str] = {}

    def collect(probe: int) -> None:
        m = SUPPRESS_RE.search(lines[probe])
        if m:
            out[m.group("rule")] = m.group("reason").strip(" :")

    collect(idx)
    probe = idx - 1
    while probe >= 0 and lines[probe].lstrip().startswith("//"):
        collect(probe)
        probe -= 1
    return out


def lint_file(path: pathlib.Path, rel: str) -> list[tuple[str, int, str, str]]:
    findings: list[tuple[str, int, str, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()

    def report(idx: int, rule: str, msg: str) -> None:
        sup = suppressions(lines, idx)
        if rule in sup:
            if not sup[rule]:
                findings.append(
                    (rel, idx + 1, rule,
                     "suppression has no reason; write "
                     f"'// qfcard-lint: ok({rule}): <why>'"))
            return
        findings.append((rel, idx + 1, rule, msg))

    unordered_aliases: set[str] = set()
    for line in lines:
        m = UNORDERED_ALIAS_RE.search(strip_comment(line))
        if m:
            unordered_aliases.add(m.group("name"))

    # Declarations through an alias: "Index idx;" / "Index<K> idx = ...".
    alias_decl_res = [
        re.compile(r"\b" + re.escape(a) +
                   r"(?:\s*<.*>)?\s+(?P<name>\w+)\s*[;({=]")
        for a in sorted(unordered_aliases)
    ]

    unordered_vars: set[str] = set()
    for line in lines:
        code = strip_comment(line)
        m = UNORDERED_DECL_RE.search(code)
        if m:
            unordered_vars.add(m.group("name"))
        for rx in alias_decl_res:
            am = rx.search(code)
            if am:
                unordered_vars.add(am.group("name"))

    iter_res = [
        re.compile(r"for\s*\([^;)]*:\s*" + re.escape(v) + r"\s*\)")
        for v in unordered_vars
    ] + [
        # Traversal starts at begin(); comparing an iterator from find()
        # against end() is a lookup and stays legal.
        re.compile(r"\b" + re.escape(v) + r"\s*\.\s*c?r?begin\s*\(")
        for v in unordered_vars
    ]

    for idx, line in enumerate(lines):
        code = strip_comment(line)
        if not code.strip():
            continue
        if BANNED_RANDOM_RE.search(code) and not rel.endswith(RANDOM_IMPL):
            report(idx, "banned-random",
                   "unseeded/unreplayable randomness; use common::Rng "
                   "(src/common/random.h) so streams derive from the seed")
        if WALL_CLOCK_RE.search(code):
            report(idx, "wall-clock",
                   "wall-clock read in library code; use "
                   "std::chrono::steady_clock for durations")
        if (RAW_STEADY_CLOCK_RE.search(code)
                and not rel.startswith(CLOCK_IMPL_PREFIX)):
            report(idx, "raw-steady-clock",
                   "raw steady_clock::now() outside src/obs/; route timing "
                   "through obs::Now(), obs::ScopedTimer, or obs::TraceSpan "
                   "so the telemetry layer stays the single clock path")
        for rx in iter_res:
            if rx.search(code):
                report(idx, "unordered-iter",
                       "iteration over an unordered container; hash order is "
                       "implementation-defined and must not feed ordered "
                       "output — use std::map/sorted vector, or justify")
                break
        if UNORDERED_USE_RE.search(code) or any(
                rx.search(code) for rx in alias_decl_res):
            report(idx, "unordered-container",
                   "unordered container without a justification; explain why "
                   "its order cannot reach output, e.g. "
                   "'// qfcard-lint: ok(unordered-container): lookup-only'")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all of src/)")
    args = parser.parse_args(argv)

    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    if args.paths:
        files = [pathlib.Path(p) for p in args.paths]
    else:
        files = sorted((root / "src").rglob("*.h")) + sorted(
            (root / "src").rglob("*.cc"))

    findings: list[tuple[str, int, str, str]] = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        findings.extend(lint_file(f, rel))

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"qfcard_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"qfcard_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
