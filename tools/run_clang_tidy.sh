#!/usr/bin/env bash
# clang-tidy driver (docs/static_analysis.md). Lints every library/test/bench
# source against the project .clang-tidy using the compilation database of a
# CMake build directory, and exits non-zero on any finding so CI can block.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to ./build; it must have been configured by CMake
#   (CMAKE_EXPORT_COMPILE_COMMANDS is always ON for this project).
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  # The container may lack clang-tidy (the image bakes only the base cpp
  # toolchain); the blocking check then runs in the clang-tidy CI job, which
  # installs it. Exit 0 so local builds aren't gated on an optional tool.
  echo "run_clang_tidy: $TIDY not found; skipping (CI runs this check)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

# Lint exactly the sources the build compiles (from the compilation
# database), so generated/external TUs never sneak in.
mapfile -t FILES < <(
  python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/src/" in f or "/tests/" in f or "/bench/" in f or "/examples/" in f:
        print(f)
EOF
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no project sources in compilation database" >&2
  exit 2
fi

echo "run_clang_tidy: linting ${#FILES[@]} files with $TIDY"
STATUS=0
# clang-tidy has no parallel mode of its own; shard across cores.
JOBS="$(nproc 2>/dev/null || echo 2)"
printf '%s\n' "${FILES[@]}" | xargs -P "$JOBS" -n 8 \
  "$TIDY" -p "$BUILD_DIR" --quiet "$@" || STATUS=1

if [[ $STATUS -ne 0 ]]; then
  echo "run_clang_tidy: findings above must be fixed (or suppressed with a" >&2
  echo "justified NOLINT, see docs/static_analysis.md)" >&2
fi
exit $STATUS
