// Fixture telemetry implementation layer: listed under telemetry.impl in
// the fixture layers.json, so registrations here (and the non-literal
// prototypes) are exempt from the catalog cross-check.
#ifndef FIXTURE_COMMON_METRICS_IMPL_H_
#define FIXTURE_COMMON_METRICS_IMPL_H_

namespace common {

void IncrementCounter(const char* name);

class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
};

inline void WarmImpl() { IncrementCounter("impl.internal"); }

}  // namespace common

#endif  // FIXTURE_COMMON_METRICS_IMPL_H_
