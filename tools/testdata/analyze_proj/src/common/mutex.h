// Fixture mutex shims: the analyzer matches these names structurally, the
// fixture tree is never compiled.
#ifndef FIXTURE_COMMON_MUTEX_H_
#define FIXTURE_COMMON_MUTEX_H_

#define QFCARD_GUARDED_BY(x)
#define QFCARD_PT_GUARDED_BY(x)
#define QFCARD_REQUIRES(...)

namespace common {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

}  // namespace common

#endif  // FIXTURE_COMMON_MUTEX_H_
