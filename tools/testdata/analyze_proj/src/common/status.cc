// Fixture: the one allowlisted abort path (layers.json error_policy.allow).
#include "common/status.h"

#include <cstdlib>

namespace common {

bool Status::ok() const { return true; }

void CheckOk(const Status& s) {
  if (!s.ok()) std::abort();
}

Status DoThing() { return Status(); }
Status OtherThing() { return Status(); }

}  // namespace common
