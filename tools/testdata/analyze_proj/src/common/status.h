// Fixture status types: [[nodiscard]] present, so the error-policy pass
// stays quiet here; DoThing/OtherThing feed the discarded-status check.
#ifndef FIXTURE_COMMON_STATUS_H_
#define FIXTURE_COMMON_STATUS_H_

namespace common {

class [[nodiscard]] Status {
 public:
  bool ok() const;
};

template <typename T>
class [[nodiscard]] StatusOr {
 public:
  bool ok() const;
};

Status DoThing();
Status OtherThing();

}  // namespace common

#endif  // FIXTURE_COMMON_STATUS_H_
