// expect: include-cycle
// Fixture: a.h <-> b.h form the seeded include cycle; the finding anchors
// at line 1 of the lexically-first file on the cycle (this one).
#ifndef FIXTURE_QUERY_A_H_
#define FIXTURE_QUERY_A_H_

#include "query/b.h"

namespace query {
struct A {};
}  // namespace query

#endif  // FIXTURE_QUERY_A_H_
