// Fixture: second half of the seeded a.h <-> b.h include cycle.
#ifndef FIXTURE_QUERY_B_H_
#define FIXTURE_QUERY_B_H_

#include "query/a.h"

namespace query {
struct B {};
}  // namespace query

#endif  // FIXTURE_QUERY_B_H_
