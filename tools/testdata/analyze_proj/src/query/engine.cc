// Fixture exercising the layering, error-policy, discarded-status, and
// telemetry passes in one translation unit.
#include "common/metrics_impl.h"
#include "common/status.h"
#include "query/a.h"
#include "serve/api.h"  // expect: layer
// qfcard-lint: ok(layer): fixture: justified upward include stays silent
#include "serve/api2.h"

namespace query {

void Run() {
  common::TraceSpan span("good.span");
  common::IncrementCounter("good.counter");
  common::IncrementCounter("unregistered.counter");  // expect: telemetry
  // qfcard-lint: ok(telemetry): fixture: justified off-catalog series
  common::IncrementCounter("justified.counter");
  common::DoThing();  // expect: discarded-status
  common::Status s = common::OtherThing();
  if (!s.ok()) throw 1;  // expect: error-policy
}

}  // namespace query
