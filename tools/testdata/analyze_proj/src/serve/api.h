// Fixture: a serve-layer header; query/ including it is an upward edge.
#ifndef FIXTURE_SERVE_API_H_
#define FIXTURE_SERVE_API_H_

namespace serve {
struct Api {};
}  // namespace serve

#endif  // FIXTURE_SERVE_API_H_
