// Fixture: serve-layer header whose upward include in query/engine.cc is
// suppressed with a reason — the layering finding must stay silent.
#ifndef FIXTURE_SERVE_API2_H_
#define FIXTURE_SERVE_API2_H_

namespace serve {
struct Api2 {};
}  // namespace serve

#endif  // FIXTURE_SERVE_API2_H_
