// Fixture for the lock-order pass: Pair's two methods acquire a_/b_ in
// opposite orders (the seeded cycle); Quiet nests an acquisition under a
// justified lock-order suppression, which drops that edge into the JSON
// report's suppressed_edges instead of the graph.
#include "common/mutex.h"

namespace serve {

class Pair {
 public:
  void First();
  void Second();

 private:
  common::Mutex a_;
  common::Mutex b_;
};

void Pair::First() {
  common::MutexLock hold_a(&a_);
  common::MutexLock hold_b(&b_);  // expect: lock-order
}

void Pair::Second() {
  common::MutexLock hold_b(&b_);
  common::MutexLock hold_a(&a_);
}

class Quiet {
 public:
  void Both();

 private:
  common::Mutex c_;
  common::Mutex d_;
};

void Quiet::Both() {
  common::MutexLock hold_c(&c_);
  // qfcard-lint: ok(lock-order): fixture: edge recorded as suppressed
  common::MutexLock hold_d(&d_);
}

}  // namespace serve
