// Fixture entry point (layers.json entry_points): composes layers freely
// and may exit — both exemptions must hold, so no findings here.
#include <cstdlib>

#include "query/a.h"
#include "serve/api.h"

int main() {
  std::exit(0);
}
