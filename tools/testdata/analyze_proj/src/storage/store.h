// Fixture for the guarded-by pass: one annotated member, one bare member
// (finding), one justified suppression (silenced), one reasonless
// suppression (itself a finding), and one suppression naming the wrong
// rule (must not silence — suppressions are rule-exact).
#ifndef FIXTURE_STORAGE_STORE_H_
#define FIXTURE_STORAGE_STORE_H_

#include "common/mutex.h"

namespace storage {

class Store {
 public:
  void Put(int v);

 private:
  common::Mutex mu_;
  int annotated_ QFCARD_GUARDED_BY(mu_);
  int bad_count_;  // expect: guarded-by
  // qfcard-lint: ok(guarded-by): fixture: written once before threads start
  int noted_;
  // qfcard-lint: ok(guarded-by)
  int lazy_;  // expect: guarded-by
  // qfcard-lint: ok(lock-order): wrong rule on purpose; must not silence
  int mismatched_;  // expect: guarded-by
};

}  // namespace storage

#endif  // FIXTURE_STORAGE_STORE_H_
