// Seeded determinism-lint violations for tests/lint_test.py. Each marked
// line must produce exactly the findings named in its `// expect:` list —
// including the multimap/multiset and alias cases the original rules
// missed. This file is analyzed, never compiled.
#include <chrono>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

using Index = std::unordered_set<int>;  // expect: unordered-container

int Sum() {
  std::unordered_map<int, int> counts;  // expect: unordered-container
  std::unordered_multimap<int, int> dupes;  // expect: unordered-container
  Index seen;  // expect: unordered-container
  int total = std::rand();  // expect: banned-random
  auto t0 = std::chrono::system_clock::now();  // expect: wall-clock
  auto t1 = std::chrono::steady_clock::now();  // expect: raw-steady-clock
  for (const auto& kv : counts) total += kv.second;  // expect: unordered-iter
  for (const auto& kv : dupes) total += kv.second;  // expect: unordered-iter
  for (int v : seen) total += v;  // expect: unordered-iter
  // qfcard-lint: ok(banned-random)
  int again = std::rand();  // expect: banned-random
  (void)t0;
  (void)t1;
  (void)again;
  return total;
}
