// Clean lint fixture: every unordered container carries a justification
// (including the alias and its declarations), and lookups never iterate.
// tests/lint_test.py expects zero findings here.
#include <unordered_map>
#include <unordered_set>

// qfcard-lint: ok(unordered-container): lookup-only membership probe
using SeenSet = std::unordered_set<int>;

int Lookup(int key) {
  // qfcard-lint: ok(unordered-container): lookup-only, order never observed
  std::unordered_map<int, int> cache;
  // qfcard-lint: ok(unordered-container): lookup-only membership probe
  SeenSet seen;
  auto it = cache.find(key);
  return it == cache.end() ? static_cast<int>(seen.count(key)) : it->second;
}
