#!/usr/bin/env python3
"""Validate a BENCH_*.json trajectory report against tools/bench_schema.json.

The report is the JSON written by `bench_matrix --benchmark_out=PATH`
(kind "matrix", from eval::MatrixRunner) or `bench_batch_scaling
--benchmark_out=PATH` (kind "batch_scaling"). CI runs both on every thread
leg and feeds the files here before archiving them as artifacts; a pass
means the perf trajectory stays machine-comparable across commits.

Checks, in order:
  1. structural — version, kind, name, the kind's required context keys,
     and the flat metrics rows ({name, unit, value});
  2. kind "matrix" — non-empty estimator/family axes, every cell carries
     estimator/family/a valid status, ok cells carry the q-error quantile
     block (mean/p50/p90/p95/p99/max, finite, >= 0) plus usec_per_query and
     train_seconds; deterministic reports must record threads=0 and zeroed
     timings (the byte-identity contract across QFCARD_THREADS);
  3. coverage — with --min-estimators/--min-families, enough distinct
     estimators and families have at least one ok cell, so a sweep that
     silently degrades to errors fails CI instead of shipping a hollow
     report.

Stdlib only (json/argparse) — no third-party packages.

Exit status: 0 valid, 1 with one "error: ..." line per violation.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

NUMERIC = (int, float)


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def require(self, cond: bool, msg: str) -> bool:
        if not cond:
            self.error(msg)
        return cond


def is_num(v) -> bool:
    return isinstance(v, NUMERIC) and not isinstance(v, bool) and \
        math.isfinite(v)


def check_structure(report: dict, schema: dict, chk: Checker) -> dict | None:
    for key in ("version", "kind", "name", "context", "metrics"):
        if not chk.require(key in report, f"missing top-level key '{key}'"):
            return None
    chk.require(report["version"] == schema.get("version", 1),
                f"unsupported report version {report['version']!r}")
    kinds = schema.get("kinds", {})
    kind = report["kind"]
    if not chk.require(kind in kinds,
                       f"unknown report kind {kind!r} (schema defines: "
                       f"{', '.join(sorted(kinds))})"):
        return None
    kschema = kinds[kind]
    context = report["context"]
    if chk.require(isinstance(context, dict), "'context' is not an object"):
        for key in kschema.get("required_context", []):
            chk.require(key in context, f"context missing '{key}'")
    metrics = report["metrics"]
    if chk.require(isinstance(metrics, list), "'metrics' is not an array"):
        names = set()
        for i, row in enumerate(metrics):
            where = f"metrics[{i}]"
            if not chk.require(isinstance(row, dict), f"{where} not an object"):
                continue
            for field in schema.get("metric_required", []):
                chk.require(field in row, f"{where} missing '{field}'")
            if isinstance(row.get("name"), str):
                names.add(row["name"])
            chk.require(is_num(row.get("value")),
                        f"{where} 'value' is not a finite number")
        for name in kschema.get("required_metrics", []):
            chk.require(name in names, f"required metric '{name}' missing")
    return kschema


def check_matrix(report: dict, kschema: dict, chk: Checker) -> None:
    for key in kschema.get("required_lists", []):
        items = report.get(key)
        chk.require(isinstance(items, list) and items and
                    all(isinstance(s, str) for s in items),
                    f"'{key}' is not a non-empty string array")
    cells = report.get("cells")
    if not chk.require(isinstance(cells, list) and cells,
                       "'cells' is not a non-empty array"):
        return
    deterministic = bool(report.get("context", {}).get("deterministic"))
    if deterministic:
        chk.require(report.get("context", {}).get("threads") == 0,
                    "deterministic report must record context.threads = 0")
    statuses = set(kschema.get("cell_statuses", []))
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not chk.require(isinstance(cell, dict), f"{where} not an object"):
            continue
        for field in kschema.get("cell_required", []):
            chk.require(field in cell, f"{where} missing '{field}'")
        status = cell.get("status")
        if not chk.require(status in statuses,
                           f"{where} status {status!r} not in "
                           f"{sorted(statuses)}"):
            continue
        if status != "ok":
            continue
        for field in kschema.get("cell_ok_required", []):
            chk.require(field in cell, f"{where} (ok) missing '{field}'")
        qerror = cell.get("qerror")
        if chk.require(isinstance(qerror, dict),
                       f"{where} 'qerror' is not an object"):
            for field in kschema.get("qerror_required", []):
                v = qerror.get(field)
                chk.require(is_num(v) and v >= 0,
                            f"{where} qerror.{field} is not a finite "
                            "non-negative number")
        for field in ("train_seconds", "usec_per_query"):
            v = cell.get(field)
            if not chk.require(is_num(v) and v >= 0,
                               f"{where} {field} is not a finite "
                               "non-negative number"):
                continue
            if deterministic:
                chk.require(v == 0,
                            f"{where} {field} = {v} but deterministic "
                            "reports must zero all timings")


def check_coverage(report: dict, min_estimators: int, min_families: int,
                   chk: Checker) -> None:
    ok_estimators = set()
    ok_families = set()
    for cell in report.get("cells", []):
        if isinstance(cell, dict) and cell.get("status") == "ok":
            ok_estimators.add(cell.get("estimator"))
            ok_families.add(cell.get("family"))
    chk.require(len(ok_estimators) >= min_estimators,
                f"only {len(ok_estimators)} estimator(s) have ok cells, "
                f"expected >= {min_estimators}")
    chk.require(len(ok_families) >= min_families,
                f"only {len(ok_families)} family(ies) have ok cells, "
                f"expected >= {min_families}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="JSON file from --benchmark_out")
    parser.add_argument("--schema",
                        default=str(pathlib.Path(__file__).resolve().parent /
                                    "bench_schema.json"))
    parser.add_argument("--min-estimators", type=int, default=0,
                        help="matrix reports: minimum distinct estimators "
                             "with at least one ok cell")
    parser.add_argument("--min-families", type=int, default=0,
                        help="matrix reports: minimum distinct families "
                             "with at least one ok cell")
    args = parser.parse_args(argv)

    try:
        report = json.loads(pathlib.Path(args.report).read_text("utf-8"))
    except (OSError, ValueError) as e:
        print(f"error: cannot parse report {args.report}: {e}",
              file=sys.stderr)
        return 1
    try:
        schema = json.loads(pathlib.Path(args.schema).read_text("utf-8"))
    except (OSError, ValueError) as e:
        print(f"error: cannot parse schema {args.schema}: {e}",
              file=sys.stderr)
        return 1

    chk = Checker()
    if chk.require(isinstance(report, dict), "report is not a JSON object"):
        kschema = check_structure(report, schema, chk)
        if kschema is not None and report.get("kind") == "matrix":
            check_matrix(report, kschema, chk)
            check_coverage(report, args.min_estimators, args.min_families,
                           chk)
        elif args.min_estimators or args.min_families:
            chk.require(report.get("kind") == "matrix",
                        "--min-estimators/--min-families only apply to "
                        "matrix reports")

    for msg in chk.errors:
        print(f"error: {msg}")
    if chk.errors:
        print(f"validate_bench: {len(chk.errors)} violation(s) in "
              f"{args.report}", file=sys.stderr)
        return 1
    n_cells = len(report.get("cells", [])) if isinstance(report, dict) else 0
    print(f"validate_bench: OK ({args.report}: kind={report.get('kind')}, "
          f"{n_cells} cells, {len(report.get('metrics', []))} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
