#!/usr/bin/env python3
"""Validate a qfcard telemetry snapshot against tools/metrics_schema.json.

The snapshot is the JSON written by `qfcard_cli --metrics-out=PATH` (or
obs::WriteSnapshotJson): metrics registry + drift-monitor state + trace-buffer
stats. CI runs the smoke workload at QFCARD_THREADS=1 and 4 and feeds the
snapshot here; a pass means the pipeline's instrumentation is still wired —
per-stage latency histograms populated, per-backend q-error histograms
populated, thread-pool series present, drift state well-formed.

Checks, in order:
  1. structural — top-level keys, version, counter/gauge/histogram row shapes,
     every histogram's buckets end in le="+Inf" and bucket counts sum to the
     histogram count;
  2. schema-required series — counters/histograms named in the schema exist
     (optionally matched by a labels prefix, e.g. any `backend=` label set);
  3. liveness — schema 'nonzero' counters have a summed value > 0 and
     'min_count' histograms have enough observations, so a refactor that
     silently stops recording fails CI instead of shipping dead telemetry.

Stdlib only (json/argparse) — no third-party packages.

Exit status: 0 valid, 1 with one "error: ..." line per violation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

NUMERIC = (int, float)


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def require(self, cond: bool, msg: str) -> bool:
        if not cond:
            self.error(msg)
        return cond


def check_structure(snap: dict, chk: Checker) -> None:
    for key in ("version", "metrics", "drift_monitor", "trace"):
        if not chk.require(key in snap, f"missing top-level key '{key}'"):
            return
    chk.require(snap["version"] == 1,
                f"unsupported snapshot version {snap['version']!r}")
    metrics = snap["metrics"]
    if not chk.require(isinstance(metrics, dict), "'metrics' is not an object"):
        return
    for section in ("counters", "gauges", "histograms"):
        rows = metrics.get(section)
        if not chk.require(isinstance(rows, list),
                           f"metrics.{section} is not an array"):
            continue
        for i, row in enumerate(rows):
            where = f"metrics.{section}[{i}]"
            if not chk.require(isinstance(row, dict), f"{where} not an object"):
                continue
            chk.require(isinstance(row.get("name"), str),
                        f"{where} missing string 'name'")
            chk.require(isinstance(row.get("labels"), str),
                        f"{where} missing string 'labels'")
            if section in ("counters", "gauges"):
                chk.require(isinstance(row.get("value"), NUMERIC),
                            f"{where} missing numeric 'value'")
            else:
                check_histogram_row(row, where, chk)


def check_histogram_row(row: dict, where: str, chk: Checker) -> None:
    for field in ("count", "sum", "mean", "max", "p50", "p90", "p95"):
        chk.require(isinstance(row.get(field), NUMERIC),
                    f"{where} missing numeric '{field}'")
    buckets = row.get("buckets")
    if not chk.require(isinstance(buckets, list) and buckets,
                       f"{where} missing non-empty 'buckets'"):
        return
    last_le = None
    total = 0
    for j, b in enumerate(buckets):
        bw = f"{where}.buckets[{j}]"
        if not chk.require(isinstance(b, dict), f"{bw} not an object"):
            return
        chk.require(isinstance(b.get("count"), int) and b["count"] >= 0,
                    f"{bw} missing non-negative integer 'count'")
        total += b.get("count", 0) if isinstance(b.get("count"), int) else 0
        last_le = b.get("le")
    chk.require(last_le == "+Inf",
                f"{where} last bucket le is {last_le!r}, expected '+Inf' "
                "(overflow bucket)")
    if isinstance(row.get("count"), int):
        chk.require(total == row["count"],
                    f"{where} bucket counts sum to {total} but count is "
                    f"{row['count']}")


def rows_named(rows: list, name: str, labels_prefix: str = "") -> list:
    return [r for r in rows
            if isinstance(r, dict) and r.get("name") == name
            and str(r.get("labels", "")).startswith(labels_prefix)]


def check_schema(snap: dict, schema: dict, chk: Checker) -> None:
    metrics = snap.get("metrics", {})
    counters = metrics.get("counters", [])
    histograms = metrics.get("histograms", [])

    cschema = schema.get("counters", {})
    for name in cschema.get("required", []):
        chk.require(bool(rows_named(counters, name)),
                    f"required counter '{name}' missing")
    for name in cschema.get("nonzero", []):
        rows = rows_named(counters, name)
        total = sum(r.get("value", 0) for r in rows)
        chk.require(bool(rows) and total > 0,
                    f"counter '{name}' must be > 0 (got {total}) — "
                    "instrumentation went dead?")

    gauges = metrics.get("gauges", [])
    for name in schema.get("gauges", {}).get("required", []):
        chk.require(bool(rows_named(gauges, name)),
                    f"required gauge '{name}' missing")

    for spec in schema.get("histograms", {}).get("required", []):
        name = spec["name"]
        prefix = spec.get("labels_prefix", "")
        rows = rows_named(histograms, name, prefix)
        label = f"'{name}'" + (f" with labels '{prefix}*'" if prefix else "")
        if not chk.require(bool(rows), f"required histogram {label} missing"):
            continue
        min_count = spec.get("min_count", 0)
        best = max(r.get("count", 0) for r in rows)
        chk.require(best >= min_count,
                    f"histogram {label} has max count {best}, expected >= "
                    f"{min_count}")

    dschema = schema.get("drift_monitor", {})
    drift = snap.get("drift_monitor", {})
    if chk.require(isinstance(drift, dict), "'drift_monitor' is not an object"):
        for field in dschema.get("required_fields", []):
            chk.require(field in drift, f"drift_monitor missing '{field}'")
        if "degraded" in drift:
            chk.require(isinstance(drift["degraded"], bool),
                        "drift_monitor.degraded is not a boolean")
        min_obs = dschema.get("min_observed", 0)
        chk.require(drift.get("observed", 0) >= min_obs,
                    f"drift_monitor.observed = {drift.get('observed')!r}, "
                    f"expected >= {min_obs} (did the q-error feed go dead?)")

    tschema = schema.get("trace", {})
    trace = snap.get("trace", {})
    if chk.require(isinstance(trace, dict), "'trace' is not an object"):
        for field in tschema.get("required_fields", []):
            chk.require(isinstance(trace.get(field), int),
                        f"trace missing integer '{field}'")
        if all(isinstance(trace.get(k), int) for k in ("recorded", "dropped")):
            chk.require(trace["dropped"] <= trace["recorded"],
                        "trace.dropped exceeds trace.recorded")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot", help="JSON file from --metrics-out")
    parser.add_argument("--schema",
                        default=str(pathlib.Path(__file__).resolve().parent /
                                    "metrics_schema.json"))
    parser.add_argument("--profile", default=None,
                        help="validate the required series of "
                             "schema['profiles'][PROFILE] instead of the "
                             "top-level ones (structural checks always run); "
                             "e.g. --profile=server for the qfcard_server "
                             "smoke snapshot")
    args = parser.parse_args(argv)

    try:
        snap = json.loads(pathlib.Path(args.snapshot).read_text("utf-8"))
    except (OSError, ValueError) as e:
        print(f"error: cannot parse snapshot {args.snapshot}: {e}",
              file=sys.stderr)
        return 1
    try:
        schema = json.loads(pathlib.Path(args.schema).read_text("utf-8"))
    except (OSError, ValueError) as e:
        print(f"error: cannot parse schema {args.schema}: {e}",
              file=sys.stderr)
        return 1

    if args.profile is not None:
        profiles = schema.get("profiles", {})
        if args.profile not in profiles:
            known = ", ".join(k for k in sorted(profiles) if k != "_comment")
            print(f"error: unknown profile '{args.profile}' "
                  f"(schema defines: {known or 'none'})", file=sys.stderr)
            return 1
        schema = profiles[args.profile]

    chk = Checker()
    if chk.require(isinstance(snap, dict), "snapshot is not a JSON object"):
        check_structure(snap, chk)
        check_schema(snap, schema, chk)

    for msg in chk.errors:
        print(f"error: {msg}")
    if chk.errors:
        print(f"validate_metrics: {len(chk.errors)} violation(s) in "
              f"{args.snapshot}", file=sys.stderr)
        return 1
    n_hist = len(snap.get("metrics", {}).get("histograms", []))
    n_ctr = len(snap.get("metrics", {}).get("counters", []))
    print(f"validate_metrics: OK ({args.snapshot}: {n_ctr} counters, "
          f"{n_hist} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
